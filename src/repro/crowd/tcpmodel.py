"""Closed-form model of a 1-MByte TCP transfer's throughput.

The crowdsourced dataset contains thousands of runs; simulating every
one packet-by-packet would be wasteful when the quantity consumed by
the paper's analysis is just the average throughput of a 1 MB flow.
This analytic model — handshake, slow-start ramp, then link-rate
transfer — matches the packet simulator closely (validated in
``tests/crowd/test_tcpmodel.py``), and the Fig. 6 experiment checks
the two agree at the CDF level.
"""

from repro.core.errors import ConfigurationError
from repro.core.units import throughput_mbps

__all__ = ["transfer_time_s", "estimate_tcp_throughput_mbps"]


def transfer_time_s(
    rate_mbps: float,
    rtt_ms: float,
    nbytes: int,
    mss_bytes: int = 1448,
    initial_cwnd: int = 10,
) -> float:
    """Time to move ``nbytes`` over a clean link of ``rate_mbps``.

    Models: one RTT of handshake, exponential slow-start rounds until
    the window covers the bandwidth-delay product, then ACK-clocked
    transfer at the link rate, plus half an RTT for the last byte to
    arrive.
    """
    if rate_mbps <= 0:
        raise ConfigurationError(f"rate must be positive: {rate_mbps}")
    if rtt_ms < 0:
        raise ConfigurationError(f"negative RTT: {rtt_ms}")
    if nbytes <= 0:
        return 0.0
    rtt = rtt_ms / 1000.0
    rate_bps = rate_mbps * 1e6 / 8.0
    total_segments = max(1, (nbytes + mss_bytes - 1) // mss_bytes)
    bdp_segments = max(1.0, rate_bps * rtt / mss_bytes)

    elapsed = rtt  # SYN / SYN-ACK
    sent = 0.0
    cwnd = float(initial_cwnd)
    while sent < total_segments and cwnd < bdp_segments:
        round_segments = min(cwnd, total_segments - sent)
        sent += round_segments
        elapsed += rtt
        cwnd *= 2.0
    if sent < total_segments:
        elapsed += (total_segments - sent) * mss_bytes / rate_bps + rtt / 2.0
    return elapsed


def estimate_tcp_throughput_mbps(
    rate_mbps: float,
    rtt_ms: float,
    nbytes: int = 1_048_576,
    mss_bytes: int = 1448,
    initial_cwnd: int = 10,
) -> float:
    """Average throughput (Mbit/s) of an ``nbytes`` transfer."""
    elapsed = transfer_time_s(rate_mbps, rtt_ms, nbytes, mss_bytes, initial_cwnd)
    return throughput_mbps(nbytes, elapsed)
