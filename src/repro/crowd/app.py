"""The Cell vs WiFi measurement app's collection state machine (Fig. 2).

One collection run walks the paper's flowchart:

1. *Start measurement* — triggered by the user or a periodic timer.
2. If WiFi is on and association succeeds, measure WiFi: a 1-MByte TCP
   upload and download against the MIT server, plus 10 pings.
3. Turn WiFi off; if cellular data is enabled, measure the cellular
   network the same way.
4. Upload the run (user id, location, traces) to the server.

Runs can be partial — WiFi association fails, the user disabled
cellular data, or the user configured WiFi-only measurement — and the
cellular side may come up on a 3G network that the paper's
network-type filter later discards.  All of those paths are modelled
so the §2.2 filtering steps have something to filter.
"""

import math
from typing import Iterator, List, Optional

from repro.core.rng import DEFAULT_SEED, RngStreams
from repro.crowd.dataset import Dataset, MeasurementRun
from repro.crowd.tcpmodel import estimate_tcp_throughput_mbps
from repro.crowd.world import RunConditions, SiteProfile, TABLE1_SITES, WorldModel

__all__ = ["CellVsWifiApp"]

ONE_MBYTE = 1_048_576


class CellVsWifiApp:
    """Generates the crowdsourced dataset by running the app's flowchart."""

    #: Probability WiFi is unavailable / association fails (Fig. 2's
    #: "Scan and Associate — Success?" branch).
    WIFI_FAILURE_P = 0.08
    #: Probability the user has cellular data disabled.
    CELL_DISABLED_P = 0.06
    #: Probability the user configured a WiFi-only or cell-only run
    #: ("some users use this app to measure only WiFi or LTE").
    SINGLE_TECH_P = 0.06
    #: Multiplicative measurement noise (log-sigma) on throughput.
    NOISE_SIGMA = 0.12
    #: Number of pings averaged per RTT measurement.
    PING_COUNT = 10
    #: Bytes one full cellular measurement consumes (1 MB up + 1 MB down).
    CELL_BYTES_PER_RUN = 2 * ONE_MBYTE

    def __init__(
        self,
        world: Optional[WorldModel] = None,
        seed: int = DEFAULT_SEED,
        cellular_budget_bytes: Optional[int] = None,
    ) -> None:
        """``cellular_budget_bytes`` models the app's data-cap setting.

        The paper: "Users can also set an upper bound on the amount of
        cellular data that the app can consume".  When a user's
        cumulative cellular usage would exceed the budget, the cellular
        half of the run is skipped (producing a partial run).
        """
        self.world = world if world is not None else WorldModel(seed)
        self._streams = RngStreams(seed).fork("crowd.app")
        self.cellular_budget_bytes = cellular_budget_bytes
        self._cellular_used: dict = {}

    # ------------------------------------------------------------------
    # One run of the Fig. 2 flowchart
    # ------------------------------------------------------------------
    def _measure_throughput(self, rate_mbps: float, rtt_ms: float, rng) -> float:
        clean = estimate_tcp_throughput_mbps(rate_mbps, rtt_ms, ONE_MBYTE)
        return clean * math.exp(self.NOISE_SIGMA * rng.gauss(0.0, 1.0))

    def _measure_rtt(self, rtt_ms: float, rng) -> float:
        pings = [
            max(1.0, rtt_ms * math.exp(0.08 * rng.gauss(0.0, 1.0)))
            for _ in range(self.PING_COUNT)
        ]
        return sum(pings) / len(pings)

    def collect_run(
        self, site: SiteProfile, run_index: int, user_id: int
    ) -> MeasurementRun:
        """Execute one measurement-collection run at ``site``."""
        conditions: RunConditions = self.world.draw_run(site, run_index)
        rng = self._streams.get(f"collect.{site.name}.{run_index}")
        run = MeasurementRun(
            user_id=user_id,
            point=conditions.point,
            timestamp=float(run_index) * 3600.0,
            cellular_technology=conditions.cellular_technology,
        )
        single_tech: Optional[str] = None
        if rng.random() < self.SINGLE_TECH_P:
            single_tech = rng.choice(["wifi", "cell"])

        # Step 2: WiFi measurement.
        wifi_possible = single_tech in (None, "wifi")
        if wifi_possible and rng.random() >= self.WIFI_FAILURE_P:
            run.wifi_down_mbps = self._measure_throughput(
                conditions.wifi_down_mbps, conditions.wifi_rtt_ms, rng
            )
            run.wifi_up_mbps = self._measure_throughput(
                conditions.wifi_up_mbps, conditions.wifi_rtt_ms, rng
            )
            run.wifi_rtt_ms = self._measure_rtt(conditions.wifi_rtt_ms, rng)

        # Step 3: cellular measurement (WiFi interface turned off).
        cell_possible = single_tech in (None, "cell")
        if cell_possible and self.cellular_budget_bytes is not None:
            used = self._cellular_used.get(user_id, 0)
            if used + self.CELL_BYTES_PER_RUN > self.cellular_budget_bytes:
                cell_possible = False  # user's data cap reached
        if cell_possible and rng.random() >= self.CELL_DISABLED_P:
            self._cellular_used[user_id] = (
                self._cellular_used.get(user_id, 0) + self.CELL_BYTES_PER_RUN
            )
            run.cell_down_mbps = self._measure_throughput(
                conditions.lte_down_mbps, conditions.lte_rtt_ms, rng
            )
            run.cell_up_mbps = self._measure_throughput(
                conditions.lte_up_mbps, conditions.lte_rtt_ms, rng
            )
            run.cell_rtt_ms = self._measure_rtt(conditions.lte_rtt_ms, rng)
        else:
            run.cellular_technology = None

        # Step 4: upload — i.e., return the record.
        return run

    # ------------------------------------------------------------------
    # Whole-dataset collection
    # ------------------------------------------------------------------
    def iter_site(self, site: SiteProfile) -> Iterator[MeasurementRun]:
        """Yield runs until the site has its Table-1 count of usable runs.

        "Usable" means the run survives the paper's filters (complete
        and LTE/HSPA+); failed attempts stay in the stream as the
        partial runs the filters exist to remove.  The generator form
        lets sinks consume runs one at a time — nothing here holds the
        site's worth of records.
        """
        rng = self._streams.get(f"users.{site.name}")
        usable = 0
        run_index = 0
        # A site is covered by a handful of distinct users.
        user_pool = [rng.randrange(10 ** 9) for _ in range(max(1, site.runs // 12))]
        while usable < site.runs and run_index < site.runs * 4 + 40:
            user_id = user_pool[run_index % len(user_pool)]
            run = self.collect_run(site, run_index, user_id)
            if run.complete and run.is_high_speed_cell:
                usable += 1
            run_index += 1
            yield run

    def collect_site(self, site: SiteProfile) -> List[MeasurementRun]:
        """:meth:`iter_site`, materialized (the historical surface)."""
        return list(self.iter_site(site))

    def iter_all(
        self, sites: Optional[List[SiteProfile]] = None
    ) -> Iterator[MeasurementRun]:
        """Stream every site's runs in Table-1 order, O(1) records held."""
        sites = sites if sites is not None else TABLE1_SITES
        for site in sites:
            yield from self.iter_site(site)

    def collect_all(self, sites: Optional[List[SiteProfile]] = None) -> Dataset:
        """Collect the full crowdsourced dataset (all Table-1 sites).

        Materializes every run; for aggregate statistics prefer
        :meth:`iter_all` with :func:`repro.crowd.dataset.stream_stats`
        (or, at crowd scale, :func:`repro.crowd.pipeline.simulate`).
        """
        return Dataset(self.iter_all(sites))
