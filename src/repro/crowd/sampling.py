"""Vectorized batch sampling of crowd-scale measurement runs.

Layer 2 of the crowd-scale pipeline: turn a :class:`PopulationSpec`
plus a :class:`~repro.crowd.world.CrowdWorld` into measurement-run
draws, in configurable batches of *columns* (parallel lists, one per
field) rather than one Python object per user.  A million-user sweep
never materializes a million ``MeasurementRun`` instances — a batch
of 8192 runs is ~20 short lists that are recycled after the sink
consumes them.

Determinism contract: run ``i`` of the population is a pure function
of ``(population, world, i)``.  Every run gets its own SHA-256-derived
RNG stream (the repo-wide :func:`~repro.core.rng.derive_seed` idiom)
with a frozen draw order, so

* batch boundaries cannot matter: sampling ``[0, n)`` in one batch or
  in any partition of batches yields bit-identical columns
  (``tests/crowd/test_sampling.py`` asserts this), and
* the scalar reference path :meth:`CrowdSampler.sample_run` — one
  run, one small record — is bit-identical to the batched path by
  construction *and* by test.
"""

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.core.rng import DEFAULT_SEED, derive_seed
from repro.crowd.dataset import MeasurementRun
from repro.crowd.geo import GeoPoint
from repro.crowd.tcpmodel import estimate_tcp_throughput_mbps
from repro.crowd.world import CrowdWorld, TABLE1_SITES, _cumulative, _pick

__all__ = ["PopulationSpec", "RunColumns", "CrowdRun", "CrowdSampler",
           "ONE_MBYTE"]

ONE_MBYTE = 1_048_576

#: Cellular technology codes used in columns (index into this tuple).
TECHNOLOGIES = ("LTE", "HSPA+", "3G")


@dataclass(frozen=True)
class PopulationSpec:
    """Declarative description of a synthetic user population.

    Defaults scale the paper's world: users are spread over the
    Table-1 sites proportionally to each site's run count, carry the
    app's partial-run probabilities, and measure once each.  The spec
    is JSON-round-trippable so it can ride in a
    :class:`~repro.parallel.SimTask`'s kwargs (and hence the result
    cache key) unchanged.
    """

    users: int
    seed: int = DEFAULT_SEED
    runs_per_user: int = 1
    site_names: Tuple[str, ...] = tuple(s.name for s in TABLE1_SITES)
    site_weights: Tuple[float, ...] = tuple(
        float(s.runs) for s in TABLE1_SITES
    )
    wifi_failure_p: float = 0.08
    cell_disabled_p: float = 0.06
    single_tech_p: float = 0.06
    noise_sigma: float = 0.12
    world_profile: Optional[dict] = None

    def __post_init__(self) -> None:
        if self.users < 1:
            raise ConfigurationError(f"users must be >= 1: {self.users}")
        if self.runs_per_user < 1:
            raise ConfigurationError(
                f"runs_per_user must be >= 1: {self.runs_per_user}"
            )
        if len(self.site_names) != len(self.site_weights):
            raise ConfigurationError(
                "site_names and site_weights length mismatch"
            )
        if not self.site_names:
            raise ConfigurationError("population needs at least one site")
        for p in (self.wifi_failure_p, self.cell_disabled_p,
                  self.single_tech_p):
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"probability out of [0, 1]: {p}")

    @property
    def total_runs(self) -> int:
        return self.users * self.runs_per_user

    def to_dict(self) -> dict:
        out = {
            "users": self.users,
            "seed": self.seed,
            "runs_per_user": self.runs_per_user,
            "site_names": list(self.site_names),
            "site_weights": list(self.site_weights),
            "wifi_failure_p": self.wifi_failure_p,
            "cell_disabled_p": self.cell_disabled_p,
            "single_tech_p": self.single_tech_p,
        }
        if self.world_profile is not None:
            out["world_profile"] = self.world_profile
        if self.noise_sigma != 0.12:
            out["noise_sigma"] = self.noise_sigma
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "PopulationSpec":
        return cls(
            users=int(data["users"]),
            seed=int(data.get("seed", DEFAULT_SEED)),
            runs_per_user=int(data.get("runs_per_user", 1)),
            site_names=tuple(data.get(
                "site_names", [s.name for s in TABLE1_SITES])),
            site_weights=tuple(data.get(
                "site_weights", [float(s.runs) for s in TABLE1_SITES])),
            wifi_failure_p=float(data.get("wifi_failure_p", 0.08)),
            cell_disabled_p=float(data.get("cell_disabled_p", 0.06)),
            single_tech_p=float(data.get("single_tech_p", 0.06)),
            noise_sigma=float(data.get("noise_sigma", 0.12)),
            world_profile=data.get("world_profile"),
        )


#: Column order of :class:`RunColumns` — frozen; tests and sinks index
#: by these names.
COLUMN_NAMES = (
    "user_id", "site", "operator", "app", "hour", "lat", "lon", "tech",
    "wifi_ok", "cell_ok",
    "wifi_down", "wifi_up", "cell_down", "cell_up",
    "wifi_rtt", "cell_rtt",
    "app_wifi_down", "app_cell_down",
)


@dataclass
class RunColumns:
    """One batch of runs in array-of-columns layout (no row objects)."""

    user_id: List[int] = field(default_factory=list)
    site: List[int] = field(default_factory=list)
    operator: List[int] = field(default_factory=list)
    app: List[int] = field(default_factory=list)
    hour: List[float] = field(default_factory=list)
    lat: List[float] = field(default_factory=list)
    lon: List[float] = field(default_factory=list)
    tech: List[int] = field(default_factory=list)
    wifi_ok: List[bool] = field(default_factory=list)
    cell_ok: List[bool] = field(default_factory=list)
    wifi_down: List[float] = field(default_factory=list)
    wifi_up: List[float] = field(default_factory=list)
    cell_down: List[float] = field(default_factory=list)
    cell_up: List[float] = field(default_factory=list)
    wifi_rtt: List[float] = field(default_factory=list)
    cell_rtt: List[float] = field(default_factory=list)
    app_wifi_down: List[float] = field(default_factory=list)
    app_cell_down: List[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.user_id)

    def row(self, i: int) -> "CrowdRun":
        return CrowdRun(*(getattr(self, name)[i] for name in COLUMN_NAMES))

    def rows(self) -> Iterator["CrowdRun"]:
        for i in range(len(self)):
            yield self.row(i)

    def to_lists(self) -> Dict[str, list]:
        """Plain picklable/JSON-able payload for crossing the wire."""
        return {name: getattr(self, name) for name in COLUMN_NAMES}

    @classmethod
    def from_lists(cls, data: Dict[str, list]) -> "RunColumns":
        return cls(**{name: list(data[name]) for name in COLUMN_NAMES})

    def extend(self, other: "RunColumns") -> None:
        for name in COLUMN_NAMES:
            getattr(self, name).extend(getattr(other, name))

    def to_measurement_runs(self) -> List[MeasurementRun]:
        """Materialize app-upload records (the legacy Dataset shape).

        O(len) objects — only for the deprecated dataset sink and for
        small-N cross-checks against the original 750-user pipeline.
        """
        runs = []
        for i in range(len(self)):
            wifi_ok, cell_ok = self.wifi_ok[i], self.cell_ok[i]
            runs.append(MeasurementRun(
                user_id=self.user_id[i],
                point=GeoPoint(self.lat[i], self.lon[i]),
                timestamp=self.hour[i] * 3600.0,
                cellular_technology=(
                    TECHNOLOGIES[self.tech[i]] if cell_ok else None
                ),
                wifi_down_mbps=self.wifi_down[i] if wifi_ok else None,
                wifi_up_mbps=self.wifi_up[i] if wifi_ok else None,
                cell_down_mbps=self.cell_down[i] if cell_ok else None,
                cell_up_mbps=self.cell_up[i] if cell_ok else None,
                wifi_rtt_ms=self.wifi_rtt[i] if wifi_ok else None,
                cell_rtt_ms=self.cell_rtt[i] if cell_ok else None,
            ))
        return runs


@dataclass(frozen=True)
class CrowdRun:
    """Scalar reference record: one run, same fields as the columns."""

    user_id: int
    site: int
    operator: int
    app: int
    hour: float
    lat: float
    lon: float
    tech: int
    wifi_ok: bool
    cell_ok: bool
    wifi_down: float
    wifi_up: float
    cell_down: float
    cell_up: float
    wifi_rtt: float
    cell_rtt: float
    app_wifi_down: float
    app_cell_down: float


class CrowdSampler:
    """Draw population runs, batched or one at a time (bit-identical)."""

    #: Non-LTE probability split, as in :class:`WorldModel`.
    NON_LTE_FRACTION = 0.15
    #: Effective log-sigma of a 10-ping average (0.08 / sqrt(10)).
    PING_AVG_SIGMA = 0.0253

    def __init__(self, world: CrowdWorld, population: PopulationSpec):
        self.world = world
        self.population = population
        self._base = derive_seed(population.seed, "crowd.scale")
        self._site_cum = _cumulative(list(population.site_weights))
        self._sites = [
            next(s for s in TABLE1_SITES if s.name == name)
            for name in population.site_names
        ]
        self._medians = [world.site_medians(name)
                         for name in population.site_names]

    # ------------------------------------------------------------------
    def sample_run(self, index: int) -> CrowdRun:
        """Reference path: the one-run scalar record for ``index``."""
        batch = RunColumns()
        self._sample_into(batch, index, 1)
        return batch.row(0)

    def sample_batch(self, start: int, count: int) -> RunColumns:
        """Batched path: columns for runs ``[start, start + count)``."""
        if start < 0 or count < 0:
            raise ConfigurationError("negative batch bounds")
        end = min(start + count, self.population.total_runs)
        batch = RunColumns()
        if end > start:
            self._sample_into(batch, start, end - start)
        return batch

    def batches(self, start: int, count: int,
                batch: int) -> Iterator[RunColumns]:
        """Yield ``[start, start+count)`` as batches of ``batch`` runs."""
        if batch < 1:
            raise ConfigurationError(f"batch must be >= 1: {batch}")
        end = min(start + count, self.population.total_runs)
        cursor = start
        while cursor < end:
            step = min(batch, end - cursor)
            yield self.sample_batch(cursor, step)
            cursor += step

    # ------------------------------------------------------------------
    def _sample_into(self, cols: RunColumns, start: int, count: int) -> None:
        """The single frozen draw path both surfaces share.

        One hot loop, local bindings for everything, appending into
        column lists.  The draw order below is part of the determinism
        contract — never reorder it.
        """
        import math
        import random

        pop = self.population
        world = self.world
        base = self._base
        runs_per_user = pop.runs_per_user
        site_cum = self._site_cum
        sites = self._sites
        medians = self._medians
        apps = world.apps
        sigma = world.SIGMA
        rtt_sigma = world.RTT_SIGMA
        uplink_tilt = math.exp(world.UPLINK_LTE_TILT)
        noise_sigma = pop.noise_sigma
        ping_sigma = self.PING_AVG_SIGMA
        non_lte = self.NON_LTE_FRACTION
        exp = math.exp
        estimate = estimate_tcp_throughput_mbps

        append_user = cols.user_id.append
        append_site = cols.site.append
        append_op = cols.operator.append
        append_app = cols.app.append
        append_hour = cols.hour.append
        append_lat = cols.lat.append
        append_lon = cols.lon.append
        append_tech = cols.tech.append
        append_wok = cols.wifi_ok.append
        append_cok = cols.cell_ok.append
        append_wd = cols.wifi_down.append
        append_wu = cols.wifi_up.append
        append_cd = cols.cell_down.append
        append_cu = cols.cell_up.append
        append_wr = cols.wifi_rtt.append
        append_cr = cols.cell_rtt.append
        append_awd = cols.app_wifi_down.append
        append_acd = cols.app_cell_down.append

        for index in range(start, start + count):
            user, run_of_user = divmod(index, runs_per_user)
            rng = random.Random(derive_seed(base, f"run.{user}.{run_of_user}"))
            gauss = rng.gauss
            uniform = rng.uniform
            rand = rng.random

            # -- user attributes (identical across a user's runs: the
            # attribute stream is keyed on the user alone) ------------
            if runs_per_user == 1:
                attr_rng = rng
            else:
                attr_rng = random.Random(derive_seed(base, f"user.{user}"))
            site_idx = _pick(site_cum, attr_rng.random())
            op_idx = world.pick_operator(attr_rng.random())
            app_idx = world.pick_app(attr_rng.random())
            hour_base = attr_rng.random() * 24.0

            # -- run-level ground truth -------------------------------
            hour = (hour_base + 5.0 * run_of_user + uniform(-1.5, 1.5)) % 24.0
            wifi_cap, cell_cap, wifi_rtt_m, cell_rtt_m = world.modifiers(
                op_idx, hour
            )
            wifi_med, lte_med, wifi_rtt_med, lte_rtt_med = medians[site_idx]
            site = sites[site_idx]
            lat = site.lat + gauss(0.0, 0.15)
            lon = site.lon + gauss(0.0, 0.15)
            wifi_down = wifi_med * wifi_cap * exp(sigma * gauss(0.0, 1.0))
            cell_down = lte_med * cell_cap * exp(sigma * gauss(0.0, 1.0))
            wifi_up = wifi_down * uniform(0.35, 0.8)
            cell_up = cell_down * uniform(0.3, 0.7) * uplink_tilt
            wifi_rtt = (wifi_rtt_med * wifi_rtt_m
                        * exp(rtt_sigma * gauss(0.0, 1.0)))
            cell_rtt = (lte_rtt_med * cell_rtt_m
                        * exp(rtt_sigma * gauss(0.0, 1.0)))

            roll = rand()
            if roll < non_lte / 2.0:
                tech = 2  # 3G: legacy cellular, much slower
                cell_down *= 0.15
                cell_up *= 0.15
                cell_rtt *= 2.0
            elif roll < non_lte:
                tech = 1  # HSPA+
            else:
                tech = 0  # LTE
            wifi_down = max(0.1, wifi_down)
            wifi_up = max(0.05, wifi_up)
            cell_down = max(0.1, cell_down)
            cell_up = max(0.05, cell_up)
            wifi_rtt = min(max(5.0, wifi_rtt), 1200.0)
            cell_rtt = min(max(15.0, cell_rtt), 1200.0)

            # -- the Fig. 2 flowchart branches -------------------------
            single = rand() < pop.single_tech_p
            single_cell = single and rand() < 0.5
            wifi_ok = ((not single) or (not single_cell)) and (
                rand() >= pop.wifi_failure_p
            )
            cell_ok = ((not single) or single_cell) and (
                rand() >= pop.cell_disabled_p
            )

            # -- measured values (1-MB TCP probe + noise; ping average
            # modelled as one lognormal draw of the mean) --------------
            if wifi_ok:
                meas_wifi_down = estimate(wifi_down, wifi_rtt) * exp(
                    noise_sigma * gauss(0.0, 1.0)
                )
                meas_wifi_up = estimate(wifi_up, wifi_rtt) * exp(
                    noise_sigma * gauss(0.0, 1.0)
                )
                meas_wifi_rtt = wifi_rtt * exp(ping_sigma * gauss(0.0, 1.0))
            else:
                meas_wifi_down = meas_wifi_up = meas_wifi_rtt = 0.0
            if cell_ok:
                meas_cell_down = estimate(cell_down, cell_rtt) * exp(
                    noise_sigma * gauss(0.0, 1.0)
                )
                meas_cell_up = estimate(cell_up, cell_rtt) * exp(
                    noise_sigma * gauss(0.0, 1.0)
                )
                meas_cell_rtt = cell_rtt * exp(ping_sigma * gauss(0.0, 1.0))
            else:
                meas_cell_down = meas_cell_up = meas_cell_rtt = 0.0

            # -- per-app experienced throughput (same links, the app's
            # flow size; reuses the ground truth, no extra draws) ------
            app = apps[app_idx]
            if wifi_ok:
                app_wifi = estimate(wifi_down, wifi_rtt, app.down_bytes)
            else:
                app_wifi = 0.0
            if cell_ok:
                app_cell = estimate(cell_down, cell_rtt, app.down_bytes)
            else:
                app_cell = 0.0

            append_user(user)
            append_site(site_idx)
            append_op(op_idx)
            append_app(app_idx)
            append_hour(hour)
            append_lat(lat)
            append_lon(lon)
            append_tech(tech)
            append_wok(wifi_ok)
            append_cok(cell_ok)
            append_wd(meas_wifi_down)
            append_wu(meas_wifi_up)
            append_cd(meas_cell_down)
            append_cu(meas_cell_up)
            append_wr(meas_wifi_rtt)
            append_cr(meas_cell_rtt)
            append_awd(app_wifi)
            append_acd(app_cell)
