"""High-level harness: build paths, run transfers, collect results.

This is the front door of the library.  A :class:`Scenario` owns an
event loop and a set of named paths (a multi-homed client's WiFi and
LTE interfaces); transfers are created on top and the whole thing runs
deterministically.

Example
-------
>>> from repro.scenario import Scenario
>>> from repro.net.path import PathConfig
>>> sc = Scenario()
>>> _ = sc.add_path(PathConfig(name="wifi", down_mbps=20, up_mbps=8, rtt_ms=30))
>>> conn = sc.tcp("wifi", total_bytes=100_000)
>>> result = sc.run_transfer(conn)
>>> result.completed
True
"""

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis import throughput as metrics
from repro.core.errors import ConfigurationError, TransferDeadlineExceeded
from repro.core.events import EventLoop
from repro.core.rng import DEFAULT_SEED, RngStreams
from repro.net.fabric import AttachedPath
from repro.net.path import Path, PathConfig
from repro.tcp.cc import single_path_factory
from repro.tcp.cc.registry import CC_REGISTRY
from repro.tcp.config import TcpConfig
from repro.tcp.connection import ConnectionBase, TcpConnection
from repro.mptcp.connection import MptcpConnection, MptcpOptions

__all__ = ["Scenario", "TransferResult", "CC_FACTORIES"]

#: Deprecated alias: single-path factories now live in the unified
#: registry (:mod:`repro.tcp.cc.registry`); kept for one PR.
CC_FACTORIES: Dict[str, Callable[[TcpConfig], object]] = {
    name: entry.factory
    for name, entry in CC_REGISTRY.items()
    if entry.factory is not None and "single" in entry.scopes
}

#: Wall-clock guard for a single simulated transfer, seconds.
DEFAULT_DEADLINE_S = 600.0


@dataclass
class TransferResult:
    """Outcome of one bulk transfer."""

    connection: ConnectionBase
    total_bytes: int
    started_at: Optional[float]
    completed_at: Optional[float]
    delivery_log: List[Tuple[float, int]]

    @property
    def completed(self) -> bool:
        return self.completed_at is not None

    @property
    def duration_s(self) -> Optional[float]:
        return metrics.transfer_duration_s(self.started_at, self.completed_at)

    @property
    def throughput_mbps(self) -> Optional[float]:
        return metrics.mean_throughput_mbps(
            self.total_bytes, self.started_at, self.completed_at
        )

    def throughput_at_bytes(self, nbytes: int) -> Optional[float]:
        """Average throughput over the first ``nbytes`` delivered in order."""
        return self.connection.throughput_at_bytes(nbytes)


class Scenario:
    """An event loop plus the client's attached paths."""

    def __init__(self, seed: int = DEFAULT_SEED, recorder=None):
        self.loop = EventLoop()
        self.rng = RngStreams(seed)
        self._paths: Dict[str, AttachedPath] = {}
        #: Optional :class:`~repro.obs.trace.TraceRecorder`.  When set,
        #: every path added and every transfer created is wired into it.
        self.recorder = recorder
        #: Armed :class:`~repro.faults.injector.FaultInjector` objects,
        #: in :meth:`inject_faults` order.
        self.fault_injectors: List = []

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_path(self, config: PathConfig) -> AttachedPath:
        """Attach a new named path (e.g. the client's WiFi interface)."""
        if config.name in self._paths:
            raise ConfigurationError(f"duplicate path name: {config.name!r}")
        path = Path(
            self.loop, config,
            loss_rng=self.rng.get(f"loss.{config.name}"),
        )
        attached = AttachedPath(path)
        self._paths[config.name] = attached
        if self.recorder is not None:
            self.recorder.watch_path(path)
        return attached

    def attached(self, name: str) -> AttachedPath:
        """Look up a previously added path."""
        if name not in self._paths:
            raise ConfigurationError(
                f"unknown path {name!r}; have {sorted(self._paths)}"
            )
        return self._paths[name]

    def path(self, name: str) -> Path:
        return self.attached(name).path

    @property
    def path_names(self) -> List[str]:
        return list(self._paths)

    @property
    def paths(self) -> List[Path]:
        """The underlying :class:`Path` objects, in insertion order."""
        return [attached.path for attached in self._paths.values()]

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------
    def inject_faults(self, spec):
        """Arm a :class:`~repro.faults.spec.FaultSpec` on this scenario.

        Every event's path must already be attached.  Returns the
        armed :class:`~repro.faults.injector.FaultInjector`, whose
        ``applied`` log records the edges that actually fired.
        """
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(
            spec, self.loop,
            {name: attached.path for name, attached in self._paths.items()},
            rng=self.rng, recorder=self.recorder,
        ).arm()
        self.fault_injectors.append(injector)
        return injector

    def applied_faults(self) -> List[dict]:
        """Every fired fault edge across injectors, as plain dicts."""
        return [
            entry
            for injector in self.fault_injectors
            for entry in injector.applied_dicts()
        ]

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def tcp(
        self,
        path_name: str,
        total_bytes: int,
        direction: str = "down",
        cc: str = "cubic",
        config: Optional[TcpConfig] = None,
    ) -> TcpConnection:
        """Create (but don't start) a single-path TCP transfer."""
        connection = TcpConnection(
            self.loop, self.attached(path_name), total_bytes,
            direction=direction, cc_factory=single_path_factory(cc),
            config=config,
        )
        if self.recorder is not None:
            connection.attach_recorder(self.recorder)
        return connection

    def mptcp(
        self,
        total_bytes: int,
        direction: str = "down",
        options: Optional[MptcpOptions] = None,
        config: Optional[TcpConfig] = None,
        path_names: Optional[List[str]] = None,
    ) -> MptcpConnection:
        """Create (but don't start) an MPTCP transfer over the paths."""
        names = path_names if path_names is not None else self.path_names
        attached = [self.attached(name) for name in names]
        if len(attached) < 1:
            raise ConfigurationError("MPTCP needs at least one path")
        connection = MptcpConnection(
            self.loop, attached, total_bytes,
            direction=direction, options=options, config=config,
        )
        if self.recorder is not None:
            connection.attach_recorder(self.recorder)
        return connection

    def add_background_flow(
        self,
        path_name: str,
        direction: str = "down",
        cc: str = "cubic",
        total_bytes: int = 512 * 1024 * 1024,
        start_at: float = 0.0,
    ) -> TcpConnection:
        """Start a long-lived competing TCP flow on a path.

        Public WiFi and cellular links are shared; a greedy competitor
        keeps the bottleneck queue occupied so measured flows operate
        under congestion from their first RTT — the regime in which
        congestion-control choices matter (paper §3.5).
        """
        connection = self.tcp(path_name, total_bytes, direction=direction, cc=cc)
        self.loop.call_at(start_at, connection.start)
        return connection

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> None:
        """Drive the event loop (absolute simulated deadline)."""
        self.loop.run(until=until)

    def run_transfer(
        self,
        connection: ConnectionBase,
        deadline_s: float = DEFAULT_DEADLINE_S,
        partial_ok: bool = False,
    ) -> TransferResult:
        """Start ``connection`` and run until it completes (or deadline).

        The application half-closes right away (it has written all its
        bytes), so FINs go out as soon as the transfer drains — the
        paper's bulk-measurement behaviour.

        A transfer that misses the deadline raises
        :class:`~repro.core.errors.TransferDeadlineExceeded` (carrying
        its bytes-acked progress and the partial result), so an
        unfinished run can never masquerade as a successful one.
        Callers measuring timeouts on purpose — probes, deadline
        sweeps, fault scenarios — opt into the old behaviour with
        ``partial_ok=True`` and get the incomplete
        :class:`TransferResult` back.
        """
        connection.start()
        connection.close()
        deadline = self.loop.now + deadline_s
        # Stop the loop directly from the completion callback: the run
        # returns at the exact completion instant instead of waking
        # every simulated second to poll for it.
        if not connection.complete:
            connection.on_complete.append(lambda conn: self.loop.stop())
            self.loop.run(until=deadline)
        if connection.complete:
            # Drain the FIN teardown (at most one simulated second past
            # completion, the old polling loop's upper bound) so
            # packet captures and energy logs see the 4-way close.
            self.loop.run(until=min(deadline, self.loop.now + 1.0))
        elif not partial_ok:
            raise TransferDeadlineExceeded(
                deadline_s=deadline_s,
                bytes_acked=connection.bytes_delivered,
                total_bytes=connection.total_bytes,
                result=self.result_of(connection),
            )
        return self.result_of(connection)

    def result_of(self, connection: ConnectionBase) -> TransferResult:
        """Snapshot a connection's outcome."""
        return TransferResult(
            connection=connection,
            total_bytes=connection.total_bytes,
            started_at=connection.started_at,
            completed_at=connection.completed_at,
            delivery_log=list(connection.delivery_log),
        )
