"""Trace summarization: cwnd timelines, retransmit breakdowns, byte splits.

Turns a JSONL trace (see :mod:`repro.obs.trace`) into the per-subflow
digest the paper's own analysis pipeline produced from tcpdump: how
many segments and bytes each subflow carried, how losses were
recovered (fast retransmit vs RTO), and how the congestion window
evolved.  Counts are derived only from "send"/"rto"/"fast_retransmit"
events, which transports emit adjacent to the corresponding
``SenderStats`` increments — so a summary reconciles *exactly* with
the run's ``TransferReport.metrics`` (checked by
:func:`repro.obs.metrics.reconcile` and the obs test suite).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.trace import TraceEvent

__all__ = ["SubflowSummary", "TraceSummary", "summarize_events",
           "render_summary"]

SubflowKey = Tuple[str, int]


@dataclass
class SubflowSummary:
    """Digest of one subflow's trace events."""

    path: str
    subflow_id: int
    segments_sent: int = 0
    bytes_sent: int = 0
    retransmits: int = 0
    retransmit_bytes: int = 0
    fast_retransmits: int = 0
    timeouts: int = 0
    dupacks: int = 0
    sched_picks: int = 0
    queue_drops: int = 0
    handshake_rtt_s: Optional[float] = None
    established_at: Optional[float] = None
    failed_reason: Optional[str] = None
    #: (time, cwnd_segments) points, one per cwnd-change event.
    cwnd_timeline: List[Tuple[float, float]] = field(default_factory=list)

    def counts(self) -> Dict[str, float]:
        """The fields reconciled against ``TransferReport.metrics``."""
        return {
            "segments_sent": float(self.segments_sent),
            "bytes_sent": float(self.bytes_sent),
            "retransmits": float(self.retransmits),
            "fast_retransmits": float(self.fast_retransmits),
            "timeouts": float(self.timeouts),
        }


@dataclass
class TraceSummary:
    """Whole-trace digest, keyed by (path, subflow_id)."""

    subflows: Dict[SubflowKey, SubflowSummary] = field(default_factory=dict)
    total_events: int = 0
    kind_counts: Dict[str, int] = field(default_factory=dict)
    duration_s: float = 0.0
    #: Chronological outage/fault timeline: (time, path, description)
    #: from ``fault_inject``/``fault_clear``/``fault_state`` events.
    fault_timeline: List[Tuple[float, str, str]] = field(default_factory=list)

    @property
    def total_bytes_sent(self) -> int:
        return sum(sf.bytes_sent for sf in self.subflows.values())

    def byte_split(self) -> Dict[SubflowKey, float]:
        """Fraction of all sent bytes each subflow carried."""
        total = self.total_bytes_sent
        if total == 0:
            return {key: 0.0 for key in self.subflows}
        return {
            key: sf.bytes_sent / total
            for key, sf in self.subflows.items()
        }

    def counts_by_subflow(self) -> Dict[SubflowKey, Dict[str, float]]:
        return {key: sf.counts() for key, sf in self.subflows.items()}


def summarize_events(events: List[TraceEvent]) -> TraceSummary:
    """Fold a trace into a :class:`TraceSummary`."""
    summary = TraceSummary(total_events=len(events))
    if events:
        summary.duration_s = max(e.time for e in events) - min(
            e.time for e in events
        )

    def subflow(event: TraceEvent) -> SubflowSummary:
        key = (event.path, event.subflow_id)
        existing = summary.subflows.get(key)
        if existing is None:
            existing = summary.subflows[key] = SubflowSummary(
                path=event.path, subflow_id=event.subflow_id
            )
        return existing

    for event in events:
        summary.kind_counts[event.kind] = (
            summary.kind_counts.get(event.kind, 0) + 1
        )
        kind = event.kind
        if kind == "send":
            sf = subflow(event)
            length = int(event.fields.get("length", 0))
            sf.segments_sent += 1
            sf.bytes_sent += length
            if event.fields.get("rxt"):
                sf.retransmits += 1
                sf.retransmit_bytes += length
        elif kind == "cwnd":
            subflow(event).cwnd_timeline.append(
                (event.time, float(event.fields.get("cwnd", 0.0)))
            )
        elif kind == "rto":
            subflow(event).timeouts += 1
        elif kind == "fast_retransmit":
            subflow(event).fast_retransmits += 1
        elif kind == "dupack":
            subflow(event).dupacks += 1
        elif kind in ("handshake", "subflow_add"):
            # "handshake" comes from the packet engine; "subflow_add"
            # is the flow engine's reduced equivalent (same rtt_s
            # payload, no per-segment events around it).
            sf = subflow(event)
            sf.handshake_rtt_s = event.fields.get("rtt_s")
            sf.established_at = event.time
        elif kind == "sched":
            subflow(event).sched_picks += 1
        elif kind == "subflow_fail":
            subflow(event).failed_reason = event.fields.get("reason")
        elif kind == "queue_drop":
            # Envelope path is the *link* name ("wifi.up") here;
            # attribute the drop to the owning subflow when the packet
            # identifies one.
            if event.subflow_id >= 0:
                key = (event.path.rsplit(".", 1)[0], event.subflow_id)
                target = summary.subflows.get(key)
                if target is not None:
                    target.queue_drops += 1
        elif kind in ("fault_inject", "fault_clear"):
            what = event.fields.get("fault", "?")
            verb = "inject" if kind == "fault_inject" else "clear"
            detail = f"{verb} {what}"
            duration = event.fields.get("duration_s")
            if kind == "fault_inject" and duration is not None:
                detail += f" for {duration:g}s"
            summary.fault_timeline.append((event.time, event.path, detail))
        elif kind == "fault_state":
            summary.fault_timeline.append(
                (event.time, event.path,
                 f"link {event.fields.get('state', '?')}")
            )
    summary.fault_timeline.sort(key=lambda entry: entry[0])
    return summary


def _sample_timeline(
    timeline: List[Tuple[float, float]], points: int
) -> List[Tuple[float, float]]:
    if len(timeline) <= points:
        return timeline
    step = (len(timeline) - 1) / (points - 1)
    return [timeline[round(i * step)] for i in range(points)]


def render_summary(summary: TraceSummary, timeline_points: int = 8) -> str:
    """ASCII rendering for ``python -m repro.obs summarize``."""
    lines: List[str] = []
    lines.append(
        f"trace: {summary.total_events} events over "
        f"{summary.duration_s:.3f}s"
    )
    kinds = ", ".join(
        f"{kind}={count}"
        for kind, count in sorted(summary.kind_counts.items())
    )
    if kinds:
        lines.append(f"  kinds: {kinds}")

    if summary.fault_timeline:
        lines.append("")
        lines.append("fault timeline:")
        for when, path, detail in summary.fault_timeline:
            lines.append(f"  {when:9.3f}s  {path:>8s}  {detail}")

    split = summary.byte_split()
    lines.append("")
    lines.append("per-subflow byte split:")
    for key in sorted(summary.subflows):
        sf = summary.subflows[key]
        lines.append(
            f"  {sf.path}/{sf.subflow_id}: {sf.bytes_sent} B "
            f"({split[key] * 100:.1f}%)"
        )

    for key in sorted(summary.subflows):
        sf = summary.subflows[key]
        lines.append("")
        lines.append(f"subflow {sf.path}/{sf.subflow_id}:")
        if sf.handshake_rtt_s is not None:
            lines.append(
                f"  handshake: {sf.handshake_rtt_s * 1000:.1f} ms "
                f"(established t={sf.established_at:.3f}s)"
            )
        lines.append(
            f"  sent: {sf.segments_sent} segments, {sf.bytes_sent} bytes"
        )
        lines.append(
            f"  retransmits: {sf.retransmits} "
            f"({sf.retransmit_bytes} B) — "
            f"fast_retransmits={sf.fast_retransmits}, "
            f"timeouts={sf.timeouts}, dupacks={sf.dupacks}"
        )
        if sf.queue_drops:
            lines.append(f"  queue drops: {sf.queue_drops}")
        if sf.failed_reason:
            lines.append(f"  failed: {sf.failed_reason}")
        if sf.cwnd_timeline:
            sampled = _sample_timeline(sf.cwnd_timeline, timeline_points)
            rendered = "  ".join(
                f"{t:.3f}s:{cwnd:.1f}" for t, cwnd in sampled
            )
            lines.append(
                f"  cwnd timeline ({len(sf.cwnd_timeline)} changes): "
                f"{rendered}"
            )
    return "\n".join(lines)
