"""repro.obs — the unified observability layer.

One instrumentation pathway for the whole simulator:

* :mod:`repro.obs.trace` — typed, timestamped transport event traces
  (:class:`TraceRecorder`), exported as JSONL.
* :mod:`repro.obs.metrics` — counters/gauges/histograms
  (:class:`MetricsRegistry`) snapshotted onto ``TransferReport``.
* :mod:`repro.obs.manifest` — per-task provenance
  (:class:`RunManifest`) stamped by the sweep engine.
* :mod:`repro.obs.progress` — live sweep progress/ETA
  (:class:`SweepProgress`).
* :mod:`repro.obs.fleet` — per-shard throughput/queue-depth metrics
  for sharded crowd-scale sweeps (:class:`FleetRecorder`).
* :mod:`repro.obs.telemetry` — the *live* plane: a process-wide
  :class:`TelemetryBus` fed by worker STATS heartbeats and
  coordinator/Session/crowd publishers, with a Prometheus-style HTTP
  exporter, a JSONL snapshot sink, and ``python -m repro.obs top``.
* :mod:`repro.obs.summary` — offline trace digests backing the
  ``python -m repro.obs`` CLI.

The legacy probes — :class:`~repro.net.capture.PacketCapture` and
:class:`~repro.net.telemetry.QueueDepthTracker` — are sinks of this
layer: both accept a ``recorder=`` and feed the same event stream
(re-exported here for discoverability).
"""

from repro.net.capture import PacketCapture
from repro.net.telemetry import QueueDepthTracker
from repro.obs.fleet import (
    FleetMetrics,
    FleetRecorder,
    ShardRecord,
    load_fleet_metrics,
    render_fleet,
)
from repro.obs.manifest import RunManifest, diff_manifests, render_diff
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SpanTimer,
    TimeSeries,
    collect_transfer_metrics,
    reconcile,
)
from repro.obs.progress import (
    PROGRESS_ENV,
    SweepProgress,
    progress_enabled_by_env,
)
from repro.obs.summary import (
    SubflowSummary,
    TraceSummary,
    render_summary,
    summarize_events,
)
from repro.obs.telemetry import (
    TELEMETRY_ENV,
    TelemetryBus,
    TelemetryServer,
    TelemetrySink,
    WorkerHealth,
    active_bus,
    load_telemetry_snapshots,
    render_prometheus,
    telemetry_enabled_by_env,
)
from repro.obs.trace import (
    EVENT_KINDS,
    TRACE_DIR_ENV,
    TraceEvent,
    TraceRecorder,
    active_trace_dir,
    load_events,
    trace_filename,
)

__all__ = [
    "EVENT_KINDS",
    "PROGRESS_ENV",
    "TELEMETRY_ENV",
    "TRACE_DIR_ENV",
    "Counter",
    "FleetMetrics",
    "FleetRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ShardRecord",
    "SpanTimer",
    "PacketCapture",
    "QueueDepthTracker",
    "RunManifest",
    "SubflowSummary",
    "SweepProgress",
    "TelemetryBus",
    "TelemetryServer",
    "TelemetrySink",
    "TimeSeries",
    "TraceEvent",
    "TraceRecorder",
    "TraceSummary",
    "WorkerHealth",
    "active_bus",
    "active_trace_dir",
    "collect_transfer_metrics",
    "diff_manifests",
    "load_events",
    "load_fleet_metrics",
    "load_telemetry_snapshots",
    "render_fleet",
    "render_prometheus",
    "progress_enabled_by_env",
    "reconcile",
    "render_diff",
    "render_summary",
    "summarize_events",
    "telemetry_enabled_by_env",
    "trace_filename",
]
