"""``python -m repro.obs top`` — live fleet view in the terminal.

Renders per-worker rows (tasks done, in-flight, queue depth,
throughput, RSS) and fleet totals with an ETA, refreshing in place.
Two sources:

* ``--connect HOST:PORT`` — polls ``/healthz`` on a running
  ``serve --telemetry-port`` exporter.
* ``FILE`` — tails the last snapshot of a ``--telemetry-out`` JSONL
  sink, so a sweep in another terminal can be watched through the
  file it is already writing.

Purely a consumer: it never touches the bus it reads from.
"""

import argparse
import json
import sys
import time
from http.client import HTTPConnection
from typing import Optional

from repro.obs.telemetry import TELEMETRY_SCHEMA

__all__ = ["fetch_http_snapshot", "read_last_snapshot", "render_top",
           "resilience_line", "top_main"]

_CLEAR = "\x1b[2J\x1b[H"


def fetch_http_snapshot(host: str, port: int,
                        timeout_s: float = 5.0) -> dict:
    """GET ``/healthz`` from a telemetry exporter."""
    conn = HTTPConnection(host, port, timeout=timeout_s)
    try:
        conn.request("GET", "/healthz")
        response = conn.getresponse()
        body = response.read()
        if response.status != 200:
            raise OSError(
                f"telemetry endpoint {host}:{port} answered "
                f"{response.status}"
            )
    finally:
        conn.close()
    data = json.loads(body)
    if not isinstance(data, dict) or data.get("schema") != TELEMETRY_SCHEMA:
        raise ValueError(
            f"{host}:{port}/healthz is not a telemetry snapshot"
        )
    return data


def read_last_snapshot(path: str) -> dict:
    """The most recent snapshot line of a ``--telemetry-out`` file."""
    last: Optional[str] = None
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            if line.strip():
                last = line
    if last is None:
        raise ValueError(f"{path} holds no telemetry snapshots yet")
    data = json.loads(last)
    if not isinstance(data, dict) or data.get("schema") != TELEMETRY_SCHEMA:
        raise ValueError(f"{path} is not a telemetry snapshot file")
    return data


def _fmt(value, spec: str = ".0f", missing: str = "-") -> str:
    if value is None:
        return missing
    return format(value, spec)


def _metric_total(metrics: dict, name: str) -> float:
    """Sum a counter across label sets (``name`` and ``name{...}`` keys)."""
    return sum(
        value for key, value in metrics.items()
        if key == name or key.startswith(name + "{")
    )


def resilience_line(metrics: dict) -> Optional[str]:
    """The self-healing event totals, or ``None`` when all quiet.

    One line covering the fleet layer: supervisor restarts, executor
    redispatches/breaker trips/hedges, sweeps degraded to the local
    pool, and chaos injections (non-zero only under ``REPRO_CHAOS``).
    """
    events = [
        ("restarts", _metric_total(metrics, "fleet.restarts")),
        ("redispatches", _metric_total(metrics, "executor.redispatches")),
        ("breaker trips", _metric_total(metrics, "executor.breaker_trips")),
        ("hedges", _metric_total(metrics, "executor.hedges")),
        ("degraded sweeps", _metric_total(metrics, "sweep.degraded")),
        ("chaos injected", _metric_total(metrics, "chaos.injected")),
    ]
    if not any(count for _, count in events):
        return None
    return "resilience: " + "   ".join(
        f"{label} {count:.0f}" for label, count in events if count
    )


def render_top(snapshot: dict) -> str:
    """One frame of the live view (no ANSI — caller clears)."""
    fleet = snapshot["fleet"]
    eta = fleet.get("eta_s")
    lines = [
        f"repro fleet — up {snapshot['uptime_s']:.0f}s   "
        f"tasks {fleet['tasks_done']:.0f}/{fleet['tasks_total']:.0f}   "
        f"hits {fleet['cache_hits']:.0f}   "
        f"rate {fleet['rate_per_s']:.1f}/s   "
        f"eta {_fmt(eta, '.0f')}s",
        f"workers: {fleet['workers']}"
        + (
            f"   DEGRADED: {fleet['workers_degraded']}"
            if fleet["workers_degraded"]
            else ""
        ),
    ]
    healing = resilience_line(snapshot.get("metrics", {}))
    if healing is not None:
        lines.append(healing)
    workers = snapshot.get("workers", [])
    if workers:
        lines.append("")
        lines.append(
            f"  {'worker':<22} {'state':<9} {'tasks':>7} {'inflt':>5} "
            f"{'queue':>5} {'tasks/s':>8} {'rss_mb':>7} {'age_s':>6}"
        )
        now = snapshot["time"]
        for row in workers:
            rss_kb = row.get("rss_kb")
            lines.append(
                f"  {row['worker']:<22} {row['state']:<9} "
                f"{_fmt(row.get('tasks_done')):>7} "
                f"{_fmt(row.get('in_flight')):>5} "
                f"{_fmt(row.get('queue_depth')):>5} "
                f"{_fmt(row.get('tasks_per_s'), '.1f'):>8} "
                f"{_fmt(None if rss_kb is None else rss_kb / 1024, '.1f'):>7} "
                f"{now - row['last_seen']:>6.1f}"
            )
    else:
        lines.append("  (no worker heartbeats — local executor or idle)")
    return "\n".join(lines)


def top_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs top",
        description="Live fleet telemetry view.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="poll /healthz on a serve --telemetry-port exporter",
    )
    source.add_argument(
        "file",
        nargs="?",
        help="tail a --telemetry-out JSONL snapshot file",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="refresh period in seconds (default 1.0)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="render a single frame and exit (for scripts/tests)",
    )
    args = parser.parse_args(argv)

    if args.connect:
        host, _, port_text = args.connect.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            parser.error(f"--connect expects HOST:PORT, got {args.connect!r}")

        def fetch() -> dict:
            return fetch_http_snapshot(host or "127.0.0.1", port)
    else:

        def fetch() -> dict:
            return read_last_snapshot(args.file)

    use_ansi = sys.stdout.isatty() and not args.once
    try:
        while True:
            try:
                snapshot = fetch()
            except (OSError, ValueError) as exc:
                print(f"repro.obs top: {exc}", file=sys.stderr)
                return 2
            frame = render_top(snapshot)
            if use_ansi:
                sys.stdout.write(_CLEAR + frame + "\n")
                sys.stdout.flush()
            else:
                print(frame)
            if args.once:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
