"""CLI for trace and manifest analysis.

Usage::

    python -m repro.obs summarize TRACE.jsonl
    python -m repro.obs diff A.manifest.json B.manifest.json
"""

import argparse
import sys

from repro.obs.manifest import RunManifest, render_diff
from repro.obs.summary import render_summary, summarize_events
from repro.obs.trace import load_events


def _cmd_summarize(args: argparse.Namespace) -> int:
    if _try_summarize_fleet(args.trace):
        return 0
    try:
        events = load_events(args.trace)
    except (OSError, ValueError) as exc:
        print(f"summarize: cannot read {args.trace}: {exc}",
              file=sys.stderr)
        return 2
    summary = summarize_events(events)
    print(render_summary(summary, timeline_points=args.timeline_points))
    return 0


def _try_summarize_fleet(path: str) -> bool:
    """Render fleet-metrics JSON (``--metrics-out``) if ``path`` is one.

    Returns False when the file is not a fleet document, so the caller
    falls through to the JSONL trace path.
    """
    from repro.obs.fleet import load_fleet_metrics, render_fleet

    try:
        metrics = load_fleet_metrics(path)
    except (OSError, ValueError, KeyError):
        return False
    print(render_fleet(metrics))
    return True


def _cmd_diff(args: argparse.Namespace) -> int:
    try:
        a = RunManifest.read(args.a)
        b = RunManifest.read(args.b)
    except (OSError, ValueError) as exc:
        print(f"diff: cannot read manifest: {exc}", file=sys.stderr)
        return 2
    rendered = render_diff(a, b)
    print(rendered)
    return 0 if rendered == "manifests identical" else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize simulator traces and diff run manifests.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser(
        "summarize",
        help="digest a JSONL trace: cwnd timeline, retransmit "
             "breakdown, per-subflow byte split",
    )
    summarize.add_argument("trace", help="path to a .jsonl trace file")
    summarize.add_argument(
        "--timeline-points", type=int, default=8,
        help="max cwnd timeline points to print per subflow",
    )
    summarize.set_defaults(fn=_cmd_summarize)

    diff = sub.add_parser(
        "diff",
        help="field-by-field diff of two run manifests "
             "(exit 1 when they differ)",
    )
    diff.add_argument("a", help="first manifest JSON file")
    diff.add_argument("b", help="second manifest JSON file")
    diff.set_defaults(fn=_cmd_diff)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
