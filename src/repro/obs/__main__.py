"""CLI for trace and manifest analysis plus live fleet telemetry.

Usage::

    python -m repro.obs summarize TRACE.jsonl
    python -m repro.obs summarize telemetry.jsonl     # sink timeline
    python -m repro.obs diff A.manifest.json B.manifest.json
    python -m repro.obs top --connect HOST:PORT
    python -m repro.obs top telemetry.jsonl
"""

import argparse
import sys

from repro.core.errors import ReproError
from repro.obs.manifest import RunManifest, render_diff
from repro.obs.summary import render_summary, summarize_events
from repro.obs.trace import load_events


def _cmd_summarize(args: argparse.Namespace) -> int:
    if _try_summarize_fleet(args.trace):
        return 0
    if _try_summarize_telemetry(args.trace):
        return 0
    try:
        events = load_events(args.trace)
    except (OSError, ValueError, KeyError, TypeError, ReproError) as exc:
        print(
            f"summarize: cannot read {args.trace}: {exc} "
            "(expected a JSONL trace, a fleet-metrics JSON document, "
            "or a telemetry snapshot file)",
            file=sys.stderr,
        )
        return 2
    summary = summarize_events(events)
    print(render_summary(summary, timeline_points=args.timeline_points))
    return 0


def _try_summarize_fleet(path: str) -> bool:
    """Render fleet-metrics JSON (``--metrics-out``) if ``path`` is one.

    Returns False when the file is not a fleet document, so the caller
    falls through to the JSONL trace path.
    """
    from repro.obs.fleet import load_fleet_metrics, render_fleet

    try:
        metrics = load_fleet_metrics(path)
    except (OSError, ValueError, KeyError, TypeError):
        return False
    print(render_fleet(metrics))
    return True


def _try_summarize_telemetry(path: str) -> bool:
    """Render a ``--telemetry-out`` sink file if ``path`` is one."""
    from repro.obs.telemetry import (
        load_telemetry_snapshots,
        render_telemetry_timeline,
    )

    try:
        snapshots = load_telemetry_snapshots(path)
    except (OSError, ValueError, KeyError, TypeError):
        return False
    print(render_telemetry_timeline(snapshots))
    return True


def _cmd_diff(args: argparse.Namespace) -> int:
    try:
        a = RunManifest.read(args.a)
        b = RunManifest.read(args.b)
    except (OSError, ValueError) as exc:
        print(f"diff: cannot read manifest: {exc}", file=sys.stderr)
        return 2
    rendered = render_diff(a, b)
    print(rendered)
    return 0 if rendered == "manifests identical" else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize simulator traces, diff run manifests, "
                    "and watch live fleet telemetry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser(
        "summarize",
        help="digest a JSONL trace, fleet-metrics JSON, or telemetry "
             "snapshot file",
    )
    summarize.add_argument("trace", help="path to a .jsonl trace file")
    summarize.add_argument(
        "--timeline-points", type=int, default=8,
        help="max cwnd timeline points to print per subflow",
    )
    summarize.set_defaults(fn=_cmd_summarize)

    diff = sub.add_parser(
        "diff",
        help="field-by-field diff of two run manifests "
             "(exit 1 when they differ)",
    )
    diff.add_argument("a", help="first manifest JSON file")
    diff.add_argument("b", help="second manifest JSON file")
    diff.set_defaults(fn=_cmd_diff)

    sub.add_parser(
        "top",
        help="live fleet view from a telemetry exporter or sink file "
             "(python -m repro.obs top --help)",
    )
    return parser


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # `top` owns its argv (argparse.REMAINDER mis-parses a leading
    # --connect), so dispatch it before the main parser runs.
    if argv[:1] == ["top"]:
        from repro.obs.top import top_main

        return top_main(argv[1:])
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
