"""Per-shard fleet metrics: live aggregation across sweep runners.

PR-6 gave each sweep a single :class:`~repro.parallel.SweepStats`
line; crowd-scale execution wants to see *inside* the sweep — how
fast each shard chewed through its user cohort and how deep the
pending-shard queue ran while results streamed back.  A
:class:`FleetRecorder` is fed from the coordinator's ``on_result``
hook (completion order, which is exactly the live view), and the
finished :class:`FleetMetrics` is JSON-round-trippable so it can be
written next to ``BENCH_crowd.json`` and rendered later by
``python -m repro.obs summarize metrics.json``.

Presentation only: recording never influences sharding, seeding, or
results — the same contract as :mod:`repro.obs.progress`.
"""

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.stats import percentile
from repro.obs.metrics import MetricsRegistry

__all__ = ["ShardRecord", "FleetMetrics", "FleetRecorder",
           "load_fleet_metrics", "render_fleet"]

#: Marker key that identifies a fleet-metrics JSON document.
FLEET_SCHEMA = "repro.obs.fleet/v1"


@dataclass
class ShardRecord:
    """One shard's execution, as observed at result time."""

    shard: int
    units: int
    wall_s: float
    cached: bool
    #: Shards still outstanding when this one resolved (queue depth).
    queue_depth: int

    @property
    def units_per_sec(self) -> float:
        return self.units / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "shard": self.shard,
            "units": self.units,
            "wall_s": round(self.wall_s, 6),
            "cached": self.cached,
            "queue_depth": self.queue_depth,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardRecord":
        return cls(
            shard=int(data["shard"]),
            units=int(data["units"]),
            wall_s=float(data["wall_s"]),
            cached=bool(data["cached"]),
            queue_depth=int(data["queue_depth"]),
        )


@dataclass
class FleetMetrics:
    """The finished per-shard picture of one sweep."""

    label: str
    unit: str
    shards: List[ShardRecord] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def total_units(self) -> int:
        return sum(record.units for record in self.shards)

    @property
    def units_per_sec(self) -> float:
        return self.total_units / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def max_queue_depth(self) -> int:
        return max((r.queue_depth for r in self.shards), default=0)

    def shard_wall_percentile(self, q: float) -> float:
        executed = [r.wall_s for r in self.shards if not r.cached]
        if not executed:
            return 0.0
        return percentile(executed, q)

    def registry(self) -> MetricsRegistry:
        """The same data as labeled obs instruments."""
        registry = MetricsRegistry()
        for record in self.shards:
            labels = {"shard": str(record.shard)}
            registry.counter(f"crowd_{self.unit}", **labels).inc(record.units)
            registry.gauge("crowd_shard_wall_s", **labels).set(record.wall_s)
            registry.gauge("crowd_queue_depth", **labels).set(
                record.queue_depth
            )
            registry.histogram("crowd_shard_units_per_sec").observe(
                record.units_per_sec
            )
        return registry

    def to_dict(self) -> dict:
        return {
            "schema": FLEET_SCHEMA,
            "label": self.label,
            "unit": self.unit,
            "elapsed_s": round(self.elapsed_s, 6),
            "shards": [record.to_dict() for record in self.shards],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetMetrics":
        return cls(
            label=str(data["label"]),
            unit=str(data["unit"]),
            elapsed_s=float(data["elapsed_s"]),
            shards=[ShardRecord.from_dict(r) for r in data["shards"]],
        )

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


class FleetRecorder:
    """Collect :class:`ShardRecord` entries as shard results stream in.

    Wire it to the sweep via ``on_result``; per-shard wall times come
    from the coordinator's manifests after the run (`attach_walls`),
    since the hook itself only sees values.
    """

    def __init__(self, label: str, total_shards: int, unit: str = "users"):
        self.metrics = FleetMetrics(label=label, unit=unit)
        self.total_shards = total_shards
        self._done = 0
        self._started = time.perf_counter()

    def record(self, shard: int, units: int, cached: bool) -> ShardRecord:
        self._done += 1
        record = ShardRecord(
            shard=shard,
            units=units,
            wall_s=0.0,
            cached=cached,
            queue_depth=self.total_shards - self._done,
        )
        self.metrics.shards.append(record)
        return record

    def finish(self, walls: Optional[Dict[int, float]] = None) -> FleetMetrics:
        """Stamp elapsed time (and per-shard walls from manifests)."""
        self.metrics.elapsed_s = time.perf_counter() - self._started
        if walls:
            for record in self.metrics.shards:
                record.wall_s = walls.get(record.shard, record.wall_s)
        self.metrics.shards.sort(key=lambda r: r.shard)
        return self.metrics


def load_fleet_metrics(path: str) -> FleetMetrics:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or data.get("schema") != FLEET_SCHEMA:
        raise ValueError(f"{path} is not a fleet-metrics JSON document")
    return FleetMetrics.from_dict(data)


def render_fleet(metrics: FleetMetrics) -> str:
    """Human-readable shard table for ``obs summarize``."""
    lines = [
        f"fleet: {metrics.label}",
        f"  shards: {len(metrics.shards)}   total {metrics.unit}: "
        f"{metrics.total_units}   elapsed: {metrics.elapsed_s:.2f}s   "
        f"{metrics.unit}/sec: {metrics.units_per_sec:,.0f}",
        f"  shard wall p50/p95: {metrics.shard_wall_percentile(50):.2f}s / "
        f"{metrics.shard_wall_percentile(95):.2f}s   max queue depth: "
        f"{metrics.max_queue_depth}",
        "",
        f"  {'shard':>5}  {'units':>9}  {'wall_s':>8}  {'units/s':>9}  "
        f"{'queue':>5}  cached",
    ]
    for record in metrics.shards:
        lines.append(
            f"  {record.shard:>5}  {record.units:>9}  "
            f"{record.wall_s:>8.2f}  {record.units_per_sec:>9,.0f}  "
            f"{record.queue_depth:>5}  {'yes' if record.cached else 'no'}"
        )
    return "\n".join(lines)
