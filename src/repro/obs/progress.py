"""Live progress/ETA reporting for sweeps.

Thousands-of-runs sweeps are opaque without feedback; a
:class:`SweepProgress` prints a single updating status line to stderr
(never stdout — figure text goes there) with completed/total counts,
cache hits, throughput, and an ETA extrapolated from wall time so far.

Enabled per-run via ``SweepRunner(progress=True)`` or globally with
``REPRO_PROGRESS=1`` (the ``--progress`` CLI flag sets the latter so
forked workers inherit it).  Progress is presentation only: it never
influences sharding, seeding, or results.
"""

import os
import sys
import time
from typing import Optional, TextIO

__all__ = ["MIN_REDRAW_INTERVAL_S", "PROGRESS_ENV", "SweepProgress",
           "progress_enabled_by_env"]

#: Environment toggle: "1"/"true"/"yes" (case-insensitive) enables.
PROGRESS_ENV = "REPRO_PROGRESS"

#: Default floor between stderr redraws.  A fully-cached sweep can
#: resolve thousands of tasks in a few milliseconds; unthrottled, each
#: would redraw the status line (thousands of writes flooding the
#: terminal and any log capturing stderr).  ≥100 ms keeps the line
#: live to a human while bounding a whole sweep's redraws.  Tests may
#: pass an explicit smaller ``min_interval_s`` to observe every frame.
MIN_REDRAW_INTERVAL_S = 0.1


def progress_enabled_by_env() -> bool:
    return os.environ.get(PROGRESS_ENV, "").strip().lower() in (
        "1", "true", "yes", "on",
    )


def _format_eta(seconds: float) -> str:
    if seconds < 0:
        return "?"
    seconds = int(round(seconds))
    if seconds < 60:
        return f"{seconds}s"
    minutes, secs = divmod(seconds, 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class SweepProgress:
    """One updating ``label: done/total`` status line with an ETA.

    ``total=None`` means the total is unknown (streaming ingestion
    from a live service): the line renders ``done/?`` with the
    observed completion rate instead of inventing an ETA.
    """

    def __init__(
        self,
        total: Optional[int],
        label: str = "sweep",
        stream: Optional[TextIO] = None,
        min_interval_s: float = MIN_REDRAW_INTERVAL_S,
    ) -> None:
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self.done = 0
        self.cached = 0
        self._started_at: Optional[float] = None
        self._last_render = 0.0

    def start(self) -> None:
        self._started_at = time.monotonic()
        self._render(force=True)

    def note_cached(self, count: int) -> None:
        """Record tasks satisfied from the cache (they count as done)."""
        self.cached += count
        self.done += count
        self._render()

    def advance(self, count: int = 1) -> None:
        self.done += count
        self._render()

    def finish(self) -> None:
        self._render(force=True)
        self.stream.write("\n")
        self.stream.flush()

    # -- rendering -------------------------------------------------------
    def _eta_s(self) -> float:
        if self._started_at is None or self.total is None:
            return -1.0
        executed = self.done - self.cached
        if executed <= 0:
            return -1.0
        elapsed = time.monotonic() - self._started_at
        remaining = self.total - self.done
        return elapsed / executed * remaining

    def _rate_per_s(self) -> float:
        """Completions per second so far (-1 when unmeasurable)."""
        if self._started_at is None or self.done <= 0:
            return -1.0
        elapsed = time.monotonic() - self._started_at
        if elapsed <= 0:
            return -1.0
        return self.done / elapsed

    def _render(self, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last_render < self.min_interval_s:
            return
        self._last_render = now
        total_text = "?" if self.total is None else str(self.total)
        parts = [f"{self.label}: {self.done}/{total_text}"]
        if self.cached:
            parts.append(f"{self.cached} cached")
        if self.total is None:
            # Unknown total: an ETA would be a lie; the observed rate
            # is the honest signal a streaming ingester can offer.
            rate = self._rate_per_s()
            if rate >= 0:
                parts.append(f"{rate:.1f}/s")
        elif 0 < self.done < self.total:
            eta = self._eta_s()
            if eta >= 0:
                parts.append(f"eta {_format_eta(eta)}")
        line = "  ".join(parts)
        self.stream.write("\r" + line.ljust(60))
        self.stream.flush()
