"""Metrics registry: counters, gauges, and histograms for a run.

Where the trace (:mod:`repro.obs.trace`) answers "what happened and
when", metrics answer "how much, in total".  A
:class:`MetricsRegistry` holds labeled instruments and snapshots them
into a flat ``{name{label=value,...}: number}`` dict — the shape that
rides on :class:`~repro.workload.report.TransferReport.metrics` and
that `python -m repro.obs summarize` reconciles traces against.

The registry is populated *after* a run from counters the simulator
already keeps (``SenderStats``, ``QueueStats``, link totals), so it
adds nothing to the simulation hot path.
"""

import math
import time
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanTimer",
    "TimeSeries",
    "collect_transfer_metrics",
]

Labels = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Dict[str, str]) -> Labels:
    return tuple(sorted(labels.items()))


def _render_labels(labels: Labels) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{key}={value}" for key, value in labels)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(f"counter increment negative: {amount}")
        self.value += amount


class Gauge:
    """A value that can move in either direction (e.g. queue depth)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Summary statistics over observed samples (count/sum/min/max)."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class TimeSeries:
    """Fixed-capacity ring buffer of wall-clock-stamped samples.

    Where a :class:`Counter` answers "how much, ever", a time series
    answers "how is it moving *right now*": the telemetry plane
    (:mod:`repro.obs.telemetry`) records the latest value of every
    live signal here and reduces the window to ``last``/``minimum``/
    ``maximum``/``rate`` for exposition.  The buffer never grows —
    once ``capacity`` samples are held, the oldest is overwritten —
    so a long-lived ``serve`` process observes for days in O(1)
    memory.
    """

    __slots__ = ("capacity", "_times", "_values", "_count", "_next")

    def __init__(self, capacity: int = 240) -> None:
        if capacity < 2:
            raise ConfigurationError(
                f"time series capacity must be >= 2: {capacity}"
            )
        self.capacity = capacity
        self._times: List[float] = [0.0] * capacity
        self._values: List[float] = [0.0] * capacity
        self._count = 0
        self._next = 0

    def __len__(self) -> int:
        return self._count

    def record(self, value: float, now: Optional[float] = None) -> None:
        """Append one sample (``now`` defaults to wall-clock time)."""
        self._times[self._next] = time.time() if now is None else now
        self._values[self._next] = float(value)
        self._next = (self._next + 1) % self.capacity
        if self._count < self.capacity:
            self._count += 1

    def samples(self) -> List[Tuple[float, float]]:
        """The held ``(time, value)`` samples, oldest first."""
        if self._count < self.capacity:
            indices = range(self._count)
        else:
            indices = (
                (self._next + offset) % self.capacity
                for offset in range(self.capacity)
            )
        return [(self._times[i], self._values[i]) for i in indices]

    @property
    def last(self) -> Optional[float]:
        if not self._count:
            return None
        return self._values[(self._next - 1) % self.capacity]

    @property
    def last_time(self) -> Optional[float]:
        if not self._count:
            return None
        return self._times[(self._next - 1) % self.capacity]

    @property
    def minimum(self) -> Optional[float]:
        if not self._count:
            return None
        return min(value for _, value in self.samples())

    @property
    def maximum(self) -> Optional[float]:
        if not self._count:
            return None
        return max(value for _, value in self.samples())

    def rate(self) -> float:
        """Value change per second across the held window.

        Meaningful for monotone signals (a counter's running total):
        ``(last - first) / (t_last - t_first)``.  Returns 0.0 when the
        window holds fewer than two samples or spans no time.
        """
        if self._count < 2:
            return 0.0
        window = self.samples()
        (t_first, v_first), (t_last, v_last) = window[0], window[-1]
        span = t_last - t_first
        if span <= 0:
            return 0.0
        return (v_last - v_first) / span


class SpanTimer:
    """Context manager timing one span into a callback.

    Obtained from :meth:`MetricsRegistry.timer`; the elapsed
    wall-clock seconds are observed into the named histogram on exit.
    Exceptions propagate (the span is still recorded).
    """

    __slots__ = ("_on_done", "_started")

    def __init__(self, on_done: Callable[[float], None]) -> None:
        self._on_done = on_done
        self._started = 0.0

    def __enter__(self) -> "SpanTimer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._on_done(time.perf_counter() - self._started)


class MetricsRegistry:
    """Labeled get-or-create store of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, Labels], Counter] = {}
        self._gauges: Dict[Tuple[str, Labels], Gauge] = {}
        self._histograms: Dict[Tuple[str, Labels], Histogram] = {}
        self._timeseries: Dict[Tuple[str, Labels], TimeSeries] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _labels_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _labels_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str, **labels: str) -> Histogram:
        key = (name, _labels_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram()
        return instrument

    def timeseries(self, name: str, capacity: int = 240,
                   **labels: str) -> TimeSeries:
        key = (name, _labels_key(labels))
        instrument = self._timeseries.get(key)
        if instrument is None:
            instrument = self._timeseries[key] = TimeSeries(capacity)
        return instrument

    def timer(self, name: str, **labels: str) -> SpanTimer:
        """A span timer observing into ``<name>_s`` on exit.

        Usage::

            with registry.timer("coordinator.dispatch"):
                ...  # the span

        The elapsed seconds land in the histogram ``<name>_s`` (count,
        sum, min, max in :meth:`snapshot`), which is all an overhead
        profile needs — no per-span allocation survives the call.
        """
        histogram = self.histogram(f"{name}_s", **labels)
        return SpanTimer(histogram.observe)

    def iter_samples(self) -> Iterator[Tuple[str, str, Labels, float]]:
        """Flat ``(kind, series_name, labels, value)`` samples.

        Histograms expand to ``_count``/``_sum``/``_min``/``_max``;
        time series reduce to ``_last``/``_min``/``_max``/``_rate``.
        The exposition renderer (:mod:`repro.obs.telemetry`) consumes
        this instead of re-parsing rendered label strings.
        """
        for (name, labels), counter in self._counters.items():
            yield "counter", name, labels, counter.value
        for (name, labels), gauge in self._gauges.items():
            yield "gauge", name, labels, gauge.value
        for (name, labels), histogram in self._histograms.items():
            yield "counter", f"{name}_count", labels, float(histogram.count)
            yield "counter", f"{name}_sum", labels, histogram.total
            if histogram.count:
                yield "gauge", f"{name}_min", labels, histogram.minimum
                yield "gauge", f"{name}_max", labels, histogram.maximum
        for (name, labels), series in self._timeseries.items():
            if not len(series):
                continue
            yield "gauge", f"{name}_last", labels, series.last
            yield "gauge", f"{name}_min", labels, series.minimum
            yield "gauge", f"{name}_max", labels, series.maximum
            yield "gauge", f"{name}_rate", labels, series.rate()

    def snapshot(self) -> Dict[str, float]:
        """Flatten every instrument into ``{name{labels}: value}``.

        Histograms expand into ``_count``/``_sum``/``_min``/``_max``
        series.  The result is plain floats, picklable, and stable
        under dict-comparison — it is what lands on
        ``TransferReport.metrics``.
        """
        out: Dict[str, float] = {}
        for (name, labels), counter in self._counters.items():
            out[name + _render_labels(labels)] = counter.value
        for (name, labels), gauge in self._gauges.items():
            out[name + _render_labels(labels)] = gauge.value
        for (name, labels), histogram in self._histograms.items():
            rendered = _render_labels(labels)
            out[f"{name}_count{rendered}"] = float(histogram.count)
            out[f"{name}_sum{rendered}"] = histogram.total
            if histogram.count:
                out[f"{name}_min{rendered}"] = histogram.minimum
                out[f"{name}_max{rendered}"] = histogram.maximum
        for (name, labels), series in self._timeseries.items():
            if not len(series):
                continue
            rendered = _render_labels(labels)
            out[f"{name}_last{rendered}"] = series.last
            out[f"{name}_min{rendered}"] = series.minimum
            out[f"{name}_max{rendered}"] = series.maximum
            out[f"{name}_rate{rendered}"] = series.rate()
        return dict(sorted(out.items()))


def collect_transfer_metrics(connection, paths: Iterable) -> Dict[str, float]:
    """Aggregate one finished transfer into a flat metrics snapshot.

    ``connection`` is any :class:`~repro.tcp.connection.ConnectionBase`;
    ``paths`` the :class:`~repro.net.path.Path` objects it ran over.
    Pulls from counters the stack already maintains (``SenderStats``,
    ``QueueStats``, link delivery totals) — a pure read, safe to call
    on live or completed connections.
    """
    registry = MetricsRegistry()
    for subflow in connection.subflows:
        labels = {"path": subflow.name, "subflow": str(subflow.subflow_id)}
        stats = subflow.sender.stats
        registry.counter("segments_sent", **labels).inc(stats.segments_sent)
        registry.counter("bytes_sent", **labels).inc(stats.bytes_sent)
        registry.counter("retransmits", **labels).inc(stats.retransmits)
        registry.counter("fast_retransmits", **labels).inc(
            stats.fast_retransmits
        )
        registry.counter("timeouts", **labels).inc(stats.timeouts)
        if subflow.handshake_rtt is not None:
            registry.histogram("handshake_rtt_s", path=subflow.name).observe(
                subflow.handshake_rtt
            )
    for path in paths:
        for direction, link in (("up", path.uplink), ("down", path.downlink)):
            labels = {"path": path.name, "dir": direction}
            qstats = link.queue.stats
            registry.counter("queue_drops", **labels).inc(qstats.dropped)
            registry.gauge("queue_max_depth_packets", **labels).set(
                qstats.max_depth_packets
            )
            registry.gauge("queue_max_depth_bytes", **labels).set(
                qstats.max_depth_bytes
            )
            registry.counter("link_delivered_bytes", **labels).inc(
                link.delivered_bytes
            )
            registry.counter("link_channel_drops", **labels).inc(
                link.channel_drops
            )
    return registry.snapshot()


def metrics_for_subflow(
    metrics: Dict[str, float], path: str, subflow_id: int
) -> Dict[str, float]:
    """Extract one subflow's series from a flat snapshot (label-matched)."""
    needle = _render_labels(
        _labels_key({"path": path, "subflow": str(subflow_id)})
    )
    out: Dict[str, float] = {}
    for key, value in metrics.items():
        if key.endswith(needle):
            out[key[: -len(needle)]] = value
    return out


def subflow_label_pairs(
    metrics: Dict[str, float],
) -> List[Tuple[str, int]]:
    """The (path, subflow_id) pairs present in a snapshot."""
    pairs = set()
    for key in metrics:
        if "{" not in key:
            continue
        name, _, rendered = key.partition("{")
        rendered = rendered.rstrip("}")
        labels = dict(
            part.split("=", 1) for part in rendered.split(",") if "=" in part
        )
        if "path" in labels and "subflow" in labels:
            pairs.add((labels["path"], int(labels["subflow"])))
    return sorted(pairs)


def reconcile(
    metrics: Dict[str, float],
    summary_counts: Dict[Tuple[str, int], Dict[str, float]],
    fields: Optional[Iterable[str]] = None,
) -> List[str]:
    """Compare a trace summary against a report's metrics snapshot.

    Returns human-readable mismatch descriptions (empty = reconciled).
    ``summary_counts`` maps (path, subflow_id) to per-field counts as
    produced by :func:`repro.obs.summary.summarize_events`.
    """
    checked = tuple(
        fields
        if fields is not None
        else ("segments_sent", "bytes_sent", "retransmits",
              "fast_retransmits", "timeouts")
    )
    problems: List[str] = []
    for (path, subflow_id), counts in sorted(summary_counts.items()):
        observed = metrics_for_subflow(metrics, path, subflow_id)
        for field in checked:
            want = observed.get(field)
            got = counts.get(field)
            if want is None or got is None:
                continue
            if want != got:
                problems.append(
                    f"{path}/{subflow_id} {field}: trace={got} "
                    f"metrics={want}"
                )
    return problems
