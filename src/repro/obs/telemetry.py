"""Live telemetry plane: a process-wide bus, exporters, and sinks.

Everything else in :mod:`repro.obs` is post-hoc — traces, manifests,
fleet metrics are inspected after the sweep ends.  The telemetry
plane watches the run *while it happens*, the way the paper's
crowd-sourced backend (§2) could watch millions of measurements
arrive: workers stream ``STATS`` heartbeats, the coordinator and
Session publish progress counters, and consumers (``repro.obs top``,
a Prometheus scrape, a JSONL sink) read a consistent snapshot at any
moment.

Contract (same as tracing, PR 3): **presentation only**.  Telemetry
on/off is bit-identical in results and ≤3% overhead
(``benchmarks/bench_obs.py`` asserts both).  The enforcement pattern
is the zero-cost guard: every producer does ::

    bus = active_bus()          # None unless telemetry is enabled
    ...
    if bus is not None:
        bus.count("sweep.tasks_done")

so a disabled bus costs one ``None`` check per publish site, and the
bus itself never feeds values back into the code that computes
results.

Enable with ``REPRO_TELEMETRY=1`` (or any truthy value), or
programmatically via :func:`enable`.  ``serve --telemetry-port`` and
``submit/serve --telemetry-out`` enable it implicitly.
"""

import json
import os
import re
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry, SpanTimer

__all__ = [
    "STALE_INTERVALS",
    "TELEMETRY_ENV",
    "TELEMETRY_SCHEMA",
    "TelemetryBus",
    "TelemetryServer",
    "TelemetrySink",
    "WorkerHealth",
    "active_bus",
    "disable",
    "enable",
    "get_bus",
    "load_telemetry_snapshots",
    "render_prometheus",
    "render_telemetry_timeline",
    "telemetry_enabled_by_env",
]

#: Environment variable that switches the telemetry plane on.
TELEMETRY_ENV = "REPRO_TELEMETRY"

#: Marker key identifying a telemetry-snapshot JSONL document.
TELEMETRY_SCHEMA = "repro.obs.telemetry/v1"

#: A worker is "degraded" after this many missed heartbeat intervals.
STALE_INTERVALS = 3.0


def telemetry_enabled_by_env() -> bool:
    value = os.environ.get(TELEMETRY_ENV, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


@dataclass
class WorkerHealth:
    """The last-known state of one remote worker, from STATS beats."""

    worker_id: str
    pid: int = 0
    interval_s: float = 1.0
    last_seen: float = 0.0
    stats: Dict[str, float] = field(default_factory=dict)

    def state(self, now: Optional[float] = None) -> str:
        """``"ok"`` while beats arrive; ``"degraded"`` once stale.

        A worker is stale when no heartbeat has been seen for more
        than :data:`STALE_INTERVALS` × its advertised interval.
        """
        now = time.time() if now is None else now
        if now - self.last_seen > STALE_INTERVALS * self.interval_s:
            return "degraded"
        return "ok"

    def to_dict(self, now: Optional[float] = None) -> dict:
        out = {
            "worker": self.worker_id,
            "pid": self.pid,
            "interval_s": self.interval_s,
            "last_seen": self.last_seen,
            "state": self.state(now),
        }
        out.update(self.stats)
        return out


class TelemetryBus:
    """Process-wide, thread-safe aggregation point for live signals.

    Producers on any thread publish through :meth:`count` /
    :meth:`record` / :meth:`observe` / :meth:`timer` /
    :meth:`publish_worker`; consumers call :meth:`snapshot` for a
    consistent JSON-able view.  The bus owns its *own*
    :class:`MetricsRegistry` — nothing here ever lands on a
    ``TransferReport``, which is how bit-identity stays trivially
    true.

    ``clock`` is injectable so staleness tests don't sleep.
    """

    def __init__(self, clock: Callable[[], float] = time.time) -> None:
        self._clock = clock
        self._lock = threading.RLock()
        self.registry = MetricsRegistry()
        self._workers: Dict[str, WorkerHealth] = {}
        self.started_at = clock()

    # -- producer surface -------------------------------------------------

    def count(self, name: str, amount: float = 1.0, **labels: str) -> None:
        """Increment a counter and record its running total.

        The time-series copy is what makes ``rate()`` (tasks/sec over
        the live window) come out of a plain monotone counter.
        """
        with self._lock:
            counter = self.registry.counter(name, **labels)
            counter.inc(amount)
            self.registry.timeseries(name, **labels).record(
                counter.value, now=self._clock()
            )

    def record(self, name: str, value: float, **labels: str) -> None:
        """Set a gauge and append the sample to its time series."""
        with self._lock:
            self.registry.gauge(name, **labels).set(value)
            self.registry.timeseries(name, **labels).record(
                value, now=self._clock()
            )

    def observe(self, name: str, value: float, **labels: str) -> None:
        with self._lock:
            self.registry.histogram(name, **labels).observe(value)

    def timer(self, name: str, **labels: str) -> SpanTimer:
        """Span timer whose elapsed seconds land in ``<name>_s``."""
        return SpanTimer(
            lambda elapsed: self.observe(f"{name}_s", elapsed, **labels)
        )

    def publish_worker(self, worker_id: str, stats: Dict) -> None:
        """Ingest one STATS heartbeat payload from a remote worker."""
        now = self._clock()
        with self._lock:
            health = self._workers.get(worker_id)
            if health is None:
                health = self._workers[worker_id] = WorkerHealth(worker_id)
            health.pid = int(stats.get("pid", health.pid))
            health.interval_s = float(
                stats.get("interval_s", health.interval_s)
            )
            health.last_seen = now
            health.stats = {
                key: value
                for key, value in stats.items()
                if key not in ("pid", "interval_s")
                and isinstance(value, (int, float))
            }
            tasks_done = health.stats.get("tasks_done")
            if tasks_done is not None:
                self.registry.timeseries(
                    "worker.tasks_done", worker=worker_id
                ).record(tasks_done, now=now)

    # -- consumer surface -------------------------------------------------

    def workers(self, now: Optional[float] = None) -> List[WorkerHealth]:
        with self._lock:
            return sorted(self._workers.values(),
                          key=lambda h: h.worker_id)

    def snapshot(self, now: Optional[float] = None) -> dict:
        """One consistent, JSON-able view of the whole plane."""
        now = self._clock() if now is None else now
        with self._lock:
            metrics = self.registry.snapshot()
            worker_rows = [
                health.to_dict(now) for health in self.workers()
            ]
            degraded = sum(
                1 for row in worker_rows if row["state"] != "ok"
            )
            tasks_total = metrics.get("sweep.tasks_total", 0.0)
            tasks_done = metrics.get("sweep.tasks_done", 0.0)
            rate = self.registry.timeseries("sweep.tasks_done").rate()
            remaining = max(0.0, tasks_total - tasks_done)
            eta_s = remaining / rate if rate > 0 and remaining else None
            return {
                "schema": TELEMETRY_SCHEMA,
                "time": now,
                "uptime_s": now - self.started_at,
                "fleet": {
                    "tasks_total": tasks_total,
                    "tasks_done": tasks_done,
                    "cache_hits": metrics.get("sweep.cache_hits", 0.0),
                    "rate_per_s": rate,
                    "eta_s": eta_s,
                    "workers": len(worker_rows),
                    "workers_degraded": degraded,
                },
                "workers": worker_rows,
                "metrics": metrics,
            }

    def clear(self) -> None:
        with self._lock:
            self.registry = MetricsRegistry()
            self._workers.clear()
            self.started_at = self._clock()


# -- process-wide switch ---------------------------------------------------

_BUS: Optional[TelemetryBus] = None
_BUS_LOCK = threading.Lock()


def enable(bus: Optional[TelemetryBus] = None) -> TelemetryBus:
    """Switch the telemetry plane on (idempotent); returns the bus."""
    global _BUS
    with _BUS_LOCK:
        if bus is not None:
            _BUS = bus
        elif _BUS is None:
            _BUS = TelemetryBus()
        return _BUS


def disable() -> None:
    global _BUS
    with _BUS_LOCK:
        _BUS = None


def get_bus() -> TelemetryBus:
    """The active bus, enabling the plane if it was off."""
    return enable()


def active_bus() -> Optional[TelemetryBus]:
    """The bus if telemetry is on, else ``None``.

    This is the producer-side guard: publish sites resolve it once
    and skip all work when it returns ``None``.  The environment
    switch (``REPRO_TELEMETRY=1``) lazily creates the bus on first
    use so subprocess workers inherit the setting for free.
    """
    if _BUS is not None:
        return _BUS
    if telemetry_enabled_by_env():
        return enable()
    return None


# -- Prometheus-style text exposition --------------------------------------

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str) -> str:
    return "repro_" + _NAME_SANITIZE.sub("_", name)


def _render_label_pairs(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_NAME_SANITIZE.sub("_", key)}="{value}"' for key, value in labels
    )
    return "{" + inner + "}"


def render_prometheus(bus: TelemetryBus,
                      now: Optional[float] = None) -> str:
    """The bus as Prometheus text exposition (``/metrics``).

    Counter/gauge/histogram-reduction series come straight from the
    registry; per-worker STATS fields become
    ``repro_worker_<field>{worker="host:port"}`` gauges, plus a
    ``repro_worker_up`` 0/1 health flag from staleness.
    """
    with bus._lock:
        lines: List[str] = []
        seen_types: Dict[str, str] = {}
        for kind, name, labels, value in bus.registry.iter_samples():
            metric = _metric_name(name)
            if metric not in seen_types:
                seen_types[metric] = kind
                lines.append(f"# TYPE {metric} {kind}")
            lines.append(
                f"{metric}{_render_label_pairs(labels)} {value}"
            )
        workers = bus.workers()
        clock_now = bus._clock() if now is None else now
    if workers:
        lines.append("# TYPE repro_worker_up gauge")
        for health in workers:
            up = 1 if health.state(clock_now) == "ok" else 0
            lines.append(
                f'repro_worker_up{{worker="{health.worker_id}"}} {up}'
            )
        fields = sorted({key for h in workers for key in h.stats})
        for stat in fields:
            metric = _metric_name(f"worker_{stat}")
            lines.append(f"# TYPE {metric} gauge")
            for health in workers:
                if stat in health.stats:
                    lines.append(
                        f'{metric}{{worker="{health.worker_id}"}} '
                        f"{health.stats[stat]}"
                    )
    return "\n".join(lines) + "\n"


# -- HTTP exporter ---------------------------------------------------------

class _TelemetryHandler(BaseHTTPRequestHandler):
    """GET-only exporter: ``/metrics`` text, ``/healthz`` JSON."""

    bus: TelemetryBus  # set by TelemetryServer on the handler class

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = render_prometheus(self.bus).encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/healthz":
            snapshot = self.bus.snapshot()
            degraded = snapshot["fleet"]["workers_degraded"]
            snapshot["ok"] = degraded == 0
            body = (json.dumps(snapshot, sort_keys=True) + "\n").encode(
                "utf-8"
            )
            content_type = "application/json"
        elif path == "/":
            body = b"repro telemetry: /metrics /healthz\n"
            content_type = "text/plain; charset=utf-8"
        else:
            self.send_error(404, "unknown path (try /metrics or /healthz)")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:
        pass  # exporter traffic is not worth stderr noise


class TelemetryServer:
    """Serve a bus over HTTP from a daemon thread.

    ``port=0`` binds an ephemeral port; :meth:`start` returns the
    actual ``(host, port)``.
    """

    def __init__(self, bus: TelemetryBus, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.bus = bus
        self.host = host
        self.port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> Tuple[str, int]:
        handler = type(
            "_BoundTelemetryHandler", (_TelemetryHandler,), {"bus": self.bus}
        )
        self._httpd = ThreadingHTTPServer((self.host, self.port), handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-telemetry-http",
            daemon=True,
        )
        self._thread.start()
        return self.host, self.port

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


# -- JSONL sink ------------------------------------------------------------

class TelemetrySink:
    """Write periodic bus snapshots to a JSONL file.

    One JSON object per line, each carrying the schema marker, so
    ``python -m repro.obs summarize FILE`` can render the fleet
    timeline after the run.  A final snapshot is flushed on
    :meth:`stop` so short runs still record at least one line.
    """

    def __init__(self, bus: TelemetryBus, path: str,
                 interval_s: float = 1.0) -> None:
        if interval_s <= 0:
            raise ConfigurationError(
                f"telemetry sink interval must be > 0: {interval_s}"
            )
        self.bus = bus
        self.path = path
        self.interval_s = interval_s
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._handle = None

    def _write_snapshot(self) -> None:
        self._handle.write(
            json.dumps(self.bus.snapshot(), sort_keys=True) + "\n"
        )
        self._handle.flush()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._write_snapshot()

    def start(self) -> "TelemetrySink":
        self._handle = open(self.path, "w", encoding="utf-8")
        self._thread = threading.Thread(
            target=self._run, name="repro-telemetry-sink", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._handle is not None:
            self._write_snapshot()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TelemetrySink":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def load_telemetry_snapshots(path: str) -> List[dict]:
    """Parse a sink file back into snapshot dicts (schema-checked)."""
    snapshots: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if (
                not isinstance(data, dict)
                or data.get("schema") != TELEMETRY_SCHEMA
            ):
                raise ValueError(
                    f"{path}:{line_no} is not a telemetry snapshot "
                    f"(expected schema {TELEMETRY_SCHEMA})"
                )
            snapshots.append(data)
    if not snapshots:
        raise ValueError(f"{path} holds no telemetry snapshots")
    return snapshots


def render_telemetry_timeline(snapshots: List[dict]) -> str:
    """Post-hoc fleet timeline for ``obs summarize`` (one row/snapshot)."""
    first, last = snapshots[0], snapshots[-1]
    fleet = last["fleet"]
    span_s = last["time"] - first["time"]
    lines = [
        "telemetry timeline",
        f"  snapshots: {len(snapshots)}   span: {span_s:.1f}s   "
        f"workers: {fleet['workers']}"
        + (
            f" ({fleet['workers_degraded']} degraded)"
            if fleet["workers_degraded"]
            else ""
        ),
        f"  tasks: {fleet['tasks_done']:.0f}/{fleet['tasks_total']:.0f}"
        f"   cache hits: {fleet['cache_hits']:.0f}"
        f"   final rate: {fleet['rate_per_s']:.1f}/s",
    ]
    from repro.obs.top import resilience_line

    healing = resilience_line(last.get("metrics", {}))
    if healing is not None:
        lines.append("  " + healing)
    lines += [
        "",
        f"  {'t+s':>7}  {'done':>8}  {'rate/s':>8}  {'hits':>6}  "
        f"{'workers':>7}  {'eta_s':>7}",
    ]
    for snap in snapshots:
        snap_fleet = snap["fleet"]
        eta = snap_fleet.get("eta_s")
        eta_text = "-" if eta is None else f"{eta:.1f}"
        lines.append(
            f"  {snap['time'] - first['time']:>7.1f}  "
            f"{snap_fleet['tasks_done']:>8.0f}  "
            f"{snap_fleet['rate_per_s']:>8.1f}  "
            f"{snap_fleet['cache_hits']:>6.0f}  "
            f"{snap_fleet['workers']:>7}  "
            f"{eta_text:>7}"
        )
    return "\n".join(lines)
