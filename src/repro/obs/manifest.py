"""Run manifests: provenance for every sweep task and rendered figure.

A :class:`RunManifest` records where a result came from — the spec
hash that addresses it, the derived seed, whether it was replayed from
the cache, how long it took and in which worker process — so a figure
built from thousands of cached and freshly-executed tasks stays
attributable.  ``python -m repro.obs diff`` compares two manifests
(e.g. the same task across two checkouts) field by field.
"""

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError

__all__ = ["RunManifest", "diff_manifests", "render_diff"]


@dataclass(slots=True)
class RunManifest:
    """Provenance record for one executed (or cache-replayed) task."""

    key: str                    # the task's sweep key (human-oriented)
    spec_hash: str              # content hash of fn + canonical kwargs
    seed: Optional[int]         # seed the task actually ran with
    cache_hit: bool             # replayed from the result cache?
    wall_time_s: float          # execution wall time (0.0 on cache hit)
    worker_pid: int             # OS pid of the executing process
    workers: int                # sweep-level worker count
    package_version: str        # repro.__version__ at run time
    code_fingerprint: str = ""  # cache fingerprint, "" when cache off
    extra: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunManifest":
        try:
            return cls(
                key=str(data["key"]),
                spec_hash=str(data["spec_hash"]),
                seed=data.get("seed"),
                cache_hit=bool(data["cache_hit"]),
                wall_time_s=float(data["wall_time_s"]),
                worker_pid=int(data["worker_pid"]),
                workers=int(data["workers"]),
                package_version=str(data["package_version"]),
                code_fingerprint=str(data.get("code_fingerprint", "")),
                extra=dict(data.get("extra", {})),
            )
        except KeyError as exc:
            raise ConfigurationError(f"manifest missing field: {exc}")

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        return cls.from_dict(json.loads(text))

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    @classmethod
    def read(cls, path: str) -> "RunManifest":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def write_manifests(manifests: List[RunManifest], path: str) -> None:
    """Write a list of manifests as one JSON document."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump([m.to_dict() for m in manifests], handle,
                  sort_keys=True, indent=2)
        handle.write("\n")


def read_manifests(path: str) -> List[RunManifest]:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, dict):
        data = [data]
    return [RunManifest.from_dict(item) for item in data]


def diff_manifests(
    a: RunManifest, b: RunManifest
) -> Dict[str, Tuple[Any, Any]]:
    """Fields whose values differ between two manifests."""
    da, db = a.to_dict(), b.to_dict()
    return {
        name: (da[name], db[name])
        for name in da
        if da[name] != db[name]
    }


def render_diff(a: RunManifest, b: RunManifest) -> str:
    """Human-readable two-column diff of two manifests."""
    delta = diff_manifests(a, b)
    if not delta:
        return "manifests identical"
    width = max(len(name) for name in delta)
    lines = [f"{len(delta)} field(s) differ:"]
    for name, (left, right) in sorted(delta.items()):
        lines.append(f"  {name:<{width}}  {left!r}  ->  {right!r}")
    return "\n".join(lines)
