"""Typed transport event traces: the simulator's "why did it do that".

The paper's methodology rests on tcpdump traces collected at the
client; those explain *what* crossed the wire but not *why* the stack
behaved the way it did.  A :class:`TraceRecorder` is the explanatory
counterpart: transports, links, and schedulers emit typed, timestamped
events into it — handshakes, cwnd moves with their reason, RTO fires,
fast retransmits, scheduler decisions with per-subflow RTT snapshots,
queue drops — and the whole trace exports as JSONL for offline
analysis (``python -m repro.obs summarize``).

Overhead model
--------------
Instrumented components hold a plain attribute that is ``None`` by
default; every emission site is guarded by ``if obs is not None``.
With no recorder attached the only cost is that pointer test, so the
simulation's hot paths stay within the benchmark guard
(``benchmarks/bench_obs.py``).  The recorder itself is strictly
passive: it never schedules events, never consumes RNG, and never
mutates the objects it observes, so a traced run is bit-identical to
an untraced one.
"""

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.core.errors import ConfigurationError

__all__ = [
    "EVENT_KINDS",
    "TRACE_DIR_ENV",
    "TraceEvent",
    "TraceRecorder",
    "active_trace_dir",
    "trace_filename",
]

#: Environment variable naming a directory to export JSONL traces to.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

#: The closed event taxonomy (see DESIGN.md §8).  A closed set keeps
#: downstream tooling (summaries, diffs) total: an unknown kind is a
#: programming error, not a silently ignored record.
EVENT_KINDS = frozenset({
    "syn",              # client sent a SYN (initial or retry)
    "handshake",        # subflow established; carries the handshake RTT
    "send",             # sender emitted a data segment (incl. rxt flag)
    "cwnd",             # cwnd/ssthresh changed, with the reason
    "dupack",           # duplicate ACK observed by the sender
    "fast_retransmit",  # dupack threshold crossed; recovery entered
    "rto",              # retransmission timer fired
    "subflow_add",      # MPTCP attached a subflow to the connection
    "subflow_fail",     # MPTCP lost a subflow (admin/blackhole/retries)
    "sched",            # scheduler assigned a chunk; RTT snapshot
    "queue_drop",       # a link queue tail-dropped a packet
    "queue_sample",     # periodic queue-occupancy sample
    "packet",           # packet-capture sink record (tcpdump analog)
    "fault_inject",     # a scheduled fault episode began (repro.faults)
    "fault_clear",      # a scheduled fault episode ended
    "fault_state",      # a link failure-knob transition, as observed
                        # by a telemetry/capture sink
})


def active_trace_dir() -> Optional[str]:
    """The trace export directory, if tracing is enabled via env."""
    configured = os.environ.get(TRACE_DIR_ENV, "").strip()
    return configured or None


def trace_filename(key: str, seed: Optional[int]) -> str:
    """Deterministic JSONL file name for one run (key is sanitized)."""
    safe = "".join(c if (c.isalnum() or c in "._-") else "_" for c in key)
    suffix = f"-s{seed}" if seed is not None else ""
    return f"{safe}{suffix}.jsonl"


@dataclass(frozen=True)
class TraceEvent:
    """One typed, timestamped observation.

    ``fields`` carries the kind-specific payload (already
    JSON-representable); the envelope — time, kind, path, flow and
    subflow identity — is uniform across kinds so traces can be
    filtered without knowing every schema.
    """

    time: float
    kind: str
    path: str = ""
    flow_id: int = -1
    subflow_id: int = -1
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "t": self.time, "kind": self.kind, "path": self.path,
            "flow": self.flow_id, "subflow": self.subflow_id,
        }
        data.update(self.fields)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceEvent":
        payload = dict(data)
        return cls(
            time=float(payload.pop("t")),
            kind=str(payload.pop("kind")),
            path=str(payload.pop("path", "")),
            flow_id=int(payload.pop("flow", -1)),
            subflow_id=int(payload.pop("subflow", -1)),
            fields=payload,
        )


class TraceRecorder:
    """Collects :class:`TraceEvent` records from an instrumented run.

    One recorder observes one scenario (its paths, connections, and
    any capture/telemetry sinks).  Attach it at construction time —
    ``Scenario(seed, recorder=...)`` — or through
    :meth:`~repro.scenario.Scenario.attach_recorder`.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def __len__(self) -> int:
        return len(self.events)

    def emit(
        self,
        kind: str,
        time: float,
        path: str = "",
        flow_id: int = -1,
        subflow_id: int = -1,
        **fields: Any,
    ) -> None:
        """Record one event (``fields`` must stay JSON-representable)."""
        if kind not in EVENT_KINDS:
            raise ConfigurationError(
                f"unknown trace event kind: {kind!r}; "
                f"known: {sorted(EVENT_KINDS)}"
            )
        self.events.append(
            TraceEvent(time, kind, path, flow_id, subflow_id, fields)
        )

    # -- queries ---------------------------------------------------------
    def of_kind(self, kind: str) -> List[TraceEvent]:
        """Events of one kind, in emission order."""
        return [event for event in self.events if event.kind == kind]

    def kinds(self) -> Dict[str, int]:
        """Event count per kind."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    # -- sink wiring -----------------------------------------------------
    def watch_path(self, path) -> None:
        """Subscribe to a :class:`~repro.net.path.Path`'s queue drops."""
        for link in (path.uplink, path.downlink):
            link.on_drop.append(self._drop_hook(link.name))

    def _drop_hook(self, link_name: str):
        def hook(packet, when: float) -> None:
            self.emit(
                "queue_drop", when, path=link_name,
                flow_id=packet.flow_id, subflow_id=packet.subflow_id,
                seq=packet.seq, payload_bytes=packet.payload_bytes,
            )
        return hook

    # -- serialization ---------------------------------------------------
    def to_jsonl(self) -> str:
        """The whole trace as JSON Lines text."""
        return "\n".join(
            json.dumps(event.to_dict(), sort_keys=True,
                       separators=(",", ":"))
            for event in self.events
        )

    def save(self, path: str) -> None:
        """Write the JSONL rendering to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())
            if self.events:
                handle.write("\n")


def load_events(path: str) -> List[TraceEvent]:
    """Parse a JSONL trace file back into typed events."""
    with open(path, "r", encoding="utf-8") as handle:
        return list(iter_events(handle))


def iter_events(lines: Iterable[str]) -> Iterator[TraceEvent]:
    """Parse an iterable of JSONL lines into typed events."""
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"trace line {lineno} is not valid JSON: {exc}"
            )
        yield TraceEvent.from_dict(data)
