"""repro — reproduction of "WiFi, LTE, or Both?" (Deng et al., IMC 2014).

A packet-level discrete-event reproduction of the paper's measurement
apparatus: single-path TCP and MPTCP stacks, Mahimahi-style link
emulation, an LTE/WiFi radio energy model, a synthetic Cell-vs-WiFi
crowdsourced dataset, and an HTTP record/replay engine — plus one
experiment module per table and figure in the paper.

Quickstart
----------
>>> from repro import Scenario, PathConfig, MptcpOptions
>>> sc = Scenario()
>>> _ = sc.add_path(PathConfig(name="wifi", down_mbps=10, up_mbps=5, rtt_ms=40))
>>> _ = sc.add_path(PathConfig(name="lte", down_mbps=15, up_mbps=8, rtt_ms=70))
>>> conn = sc.mptcp(total_bytes=1_000_000,
...                 options=MptcpOptions(primary="wifi",
...                                      congestion_control="decoupled"))
>>> result = sc.run_transfer(conn)
>>> result.completed
True
"""

from repro.core.rng import DEFAULT_SEED
from repro.net.path import PathConfig
from repro.net.trace import DeliveryTrace
from repro.tcp.config import TcpConfig
from repro.tcp.connection import TcpConnection
from repro.mptcp.connection import MptcpConnection, MptcpOptions
from repro.scenario import Scenario, TransferResult

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_SEED",
    "PathConfig",
    "DeliveryTrace",
    "TcpConfig",
    "TcpConnection",
    "MptcpConnection",
    "MptcpOptions",
    "Scenario",
    "TransferResult",
    "__version__",
]
