"""Adaptive network/transport selection (the paper's §7 future work).

The paper closes with open questions: *"how can we automatically
decide when to use single path TCP and when to use MPTCP?  How should
we decide which network to use for TCP, or which network to use for a
subflow with MPTCP?"*  This package builds that decision layer on top
of the reproduction's substrate:

* :mod:`repro.policy.probes` — lightweight active measurements (pings
  and short probe transfers) a client can afford before choosing;
* :mod:`repro.policy.estimator` — per-path condition estimates with
  exponential aging;
* :mod:`repro.policy.policies` — selection policies: the static ones
  mobile OSes shipped (always-WiFi), the paper-informed adaptive rule,
  and oracle upper bounds;
* :mod:`repro.policy.evaluation` — a harness comparing policies across
  the 20 emulated locations and flow sizes.
"""

from repro.policy.probes import PathProbe, ProbeReport
from repro.policy.estimator import PathEstimate, ConditionEstimator
from repro.policy.policies import (
    Decision,
    SelectionPolicy,
    AlwaysWifiPolicy,
    AlwaysMptcpPolicy,
    BestPathPolicy,
    PaperAdaptivePolicy,
    OraclePolicy,
    STANDARD_POLICIES,
)
from repro.policy.evaluation import PolicyEvaluation, evaluate_policies

__all__ = [
    "PathProbe",
    "ProbeReport",
    "PathEstimate",
    "ConditionEstimator",
    "Decision",
    "SelectionPolicy",
    "AlwaysWifiPolicy",
    "AlwaysMptcpPolicy",
    "BestPathPolicy",
    "PaperAdaptivePolicy",
    "OraclePolicy",
    "STANDARD_POLICIES",
    "PolicyEvaluation",
    "evaluate_policies",
]
