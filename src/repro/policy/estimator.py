"""Per-path condition estimates with exponential aging.

Mobile network conditions change on timescales of seconds to minutes
(the paper's motivation for an *adaptive* policy), so estimates decay:
a fresh probe dominates, and confidence fades as a sample ages.
"""

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.policy.probes import ProbeReport

__all__ = ["PathEstimate", "ConditionEstimator"]


@dataclass
class PathEstimate:
    """Smoothed view of one path's condition."""

    path_name: str
    rtt_s: Optional[float] = None
    throughput_mbps: Optional[float] = None
    last_updated: float = -math.inf
    samples: int = 0

    def confidence(self, now: float, half_life_s: float) -> float:
        """0..1 weight for this estimate at time ``now``."""
        if self.samples == 0:
            return 0.0
        age = max(0.0, now - self.last_updated)
        return 0.5 ** (age / half_life_s)

    @property
    def usable(self) -> bool:
        return self.samples > 0 and self.throughput_mbps is not None


class ConditionEstimator:
    """Maintains :class:`PathEstimate` objects from probe reports.

    New samples are EWMA-blended with weight proportional to how stale
    the previous estimate is — a fresh estimate resists noise, a stale
    one yields to new evidence.
    """

    def __init__(self, half_life_s: float = 30.0, min_blend: float = 0.3):
        self.half_life_s = half_life_s
        self.min_blend = min_blend
        self._estimates: Dict[str, PathEstimate] = {}

    def estimate(self, path_name: str) -> PathEstimate:
        if path_name not in self._estimates:
            self._estimates[path_name] = PathEstimate(path_name=path_name)
        return self._estimates[path_name]

    @property
    def paths(self) -> Dict[str, PathEstimate]:
        return dict(self._estimates)

    def observe(self, report: ProbeReport, now: float) -> PathEstimate:
        """Fold a probe report into the estimate for its path."""
        estimate = self.estimate(report.path_name)
        if not report.usable:
            # A dead probe is evidence too: zero the throughput.
            estimate.throughput_mbps = 0.0
            estimate.last_updated = now
            estimate.samples += 1
            return estimate
        staleness = 1.0 - estimate.confidence(now, self.half_life_s)
        blend = max(self.min_blend, staleness)
        if estimate.rtt_s is None or report.rtt_s is None:
            estimate.rtt_s = report.rtt_s or estimate.rtt_s
        else:
            estimate.rtt_s = (1 - blend) * estimate.rtt_s + blend * report.rtt_s
        if estimate.throughput_mbps is None or report.throughput_mbps is None:
            estimate.throughput_mbps = (
                report.throughput_mbps or estimate.throughput_mbps
            )
        else:
            estimate.throughput_mbps = (
                (1 - blend) * estimate.throughput_mbps
                + blend * report.throughput_mbps
            )
        estimate.last_updated = now
        estimate.samples += 1
        return estimate
