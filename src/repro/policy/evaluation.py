"""Policy evaluation harness: regret vs the oracle across locations.

For each emulated location and flow size the harness (1) probes both
paths the way a client would, (2) measures every concrete strategy's
completion time, then (3) scores each policy by the completion time of
the strategy it chose.  The headline statistic is mean completion time
normalized by the oracle's — 1.0 means the policy always picked the
winner.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.rng import DEFAULT_SEED
from repro.linkem.conditions import LocationCondition, build_scenario, make_conditions
from repro.mptcp.connection import MptcpOptions
from repro.policy.estimator import ConditionEstimator
from repro.policy.policies import Decision, OraclePolicy, SelectionPolicy
from repro.policy.probes import PathProbe

__all__ = ["PolicyEvaluation", "evaluate_policies", "STRATEGIES", "measure_strategies"]

#: The concrete strategies a decision can resolve to.
STRATEGIES: Dict[str, Decision] = {
    "tcp-wifi": Decision("tcp", "wifi"),
    "tcp-lte": Decision("tcp", "lte"),
    "mptcp-wifi-decoupled": Decision("mptcp", "wifi", "decoupled"),
    "mptcp-lte-decoupled": Decision("mptcp", "lte", "decoupled"),
    "mptcp-wifi-coupled": Decision("mptcp", "wifi", "coupled"),
    "mptcp-lte-coupled": Decision("mptcp", "lte", "coupled"),
}


def _run_decision(
    condition: LocationCondition, decision: Decision, nbytes: int, seed: int,
    deadline_s: float = 240.0,
) -> float:
    scenario = build_scenario(condition, seed=seed)
    if decision.kind == "tcp":
        connection = scenario.tcp(decision.path, nbytes)
    else:
        options = MptcpOptions(
            primary=decision.path,
            congestion_control=decision.congestion_control,
        )
        connection = scenario.mptcp(nbytes, options=options)
    result = scenario.run_transfer(connection, deadline_s=deadline_s,
                                   partial_ok=True)
    return result.duration_s if result.completed else deadline_s


def measure_strategies(
    condition: LocationCondition, nbytes: int, seed: int,
) -> Dict[str, float]:
    """Completion time of every strategy at one location."""
    return {
        name: _run_decision(condition, decision, nbytes, seed)
        for name, decision in STRATEGIES.items()
    }


def probe_condition(
    condition: LocationCondition, seed: int, probe: Optional[PathProbe] = None,
) -> ConditionEstimator:
    """Run client-style probes at a location, building estimates."""
    probe = probe if probe is not None else PathProbe()
    estimator = ConditionEstimator()
    scenario = build_scenario(condition, seed=seed)
    for path_name in ("wifi", "lte"):
        report = probe.run(scenario, path_name)
        estimator.observe(report, now=scenario.loop.now)
    return estimator


@dataclass
class PolicyEvaluation:
    """Results of one evaluation sweep."""

    flow_bytes: int
    #: condition id -> strategy name -> measured duration.
    measured: Dict[int, Dict[str, float]] = field(default_factory=dict)
    #: policy name -> condition id -> chosen strategy name.
    choices: Dict[str, Dict[int, str]] = field(default_factory=dict)

    def policy_duration(self, policy_name: str, condition_id: int) -> float:
        choice = self.choices[policy_name][condition_id]
        return self.measured[condition_id][choice]

    def oracle_duration(self, condition_id: int) -> float:
        return min(self.measured[condition_id].values())

    def mean_normalized(self, policy_name: str) -> float:
        """Mean (policy time / oracle time) across conditions (>= 1)."""
        ratios = [
            self.policy_duration(policy_name, cid) / self.oracle_duration(cid)
            for cid in self.measured
        ]
        return sum(ratios) / len(ratios)

    def win_rate(self, policy_name: str, tolerance: float = 1.05) -> float:
        """Fraction of conditions within ``tolerance`` of the oracle."""
        hits = [
            self.policy_duration(policy_name, cid)
            <= self.oracle_duration(cid) * tolerance
            for cid in self.measured
        ]
        return sum(hits) / len(hits)


def evaluate_policies(
    policies: Sequence[SelectionPolicy],
    flow_bytes: int,
    seed: int = DEFAULT_SEED,
    conditions: Optional[List[LocationCondition]] = None,
) -> PolicyEvaluation:
    """Score ``policies`` on ``flow_bytes`` transfers across locations."""
    conditions = conditions if conditions is not None else make_conditions(seed=seed)
    evaluation = PolicyEvaluation(flow_bytes=flow_bytes)
    oracle = OraclePolicy()
    all_policies = list(policies) + [oracle]
    for policy in all_policies:
        evaluation.choices[policy.name] = {}

    for condition in conditions:
        cid = condition.condition_id
        measured = measure_strategies(condition, flow_bytes, seed)
        evaluation.measured[cid] = measured
        estimator = probe_condition(condition, seed)
        oracle.inform(measured, STRATEGIES)
        for policy in all_policies:
            decision = policy.decide(estimator, flow_bytes, now=0.0)
            evaluation.choices[policy.name][cid] = decision.strategy_name
    return evaluation
