"""Active probing: what a client can cheaply learn about its paths.

A probe is what the Cell vs WiFi app does in miniature: a few pings
for RTT and a short TCP transfer for a bandwidth hint.  Probes run in
the same simulated scenario as the traffic they inform, so they consume
real (simulated) time and bytes — the cost/accuracy trade-off is part
of the model.
"""

from dataclasses import dataclass
from typing import Optional

from repro.core.errors import ConfigurationError
from repro.scenario import Scenario

__all__ = ["ProbeReport", "PathProbe"]


@dataclass
class ProbeReport:
    """Outcome of probing one path."""

    path_name: str
    rtt_s: Optional[float]
    throughput_mbps: Optional[float]
    probe_bytes: int
    elapsed_s: float

    @property
    def usable(self) -> bool:
        """Whether the path responded at all."""
        return self.rtt_s is not None


class PathProbe:
    """Measures one path with a short transfer.

    The probe transfer doubles as the ping: its handshake RTT is the
    latency sample and its completion time gives the bandwidth hint.
    """

    def __init__(self, probe_bytes: int = 64 * 1024,
                 timeout_s: float = 3.0) -> None:
        if probe_bytes <= 0:
            raise ConfigurationError(f"probe_bytes must be positive: {probe_bytes}")
        if timeout_s <= 0:
            raise ConfigurationError(f"timeout_s must be positive: {timeout_s}")
        self.probe_bytes = probe_bytes
        self.timeout_s = timeout_s

    def run(self, scenario: Scenario, path_name: str) -> ProbeReport:
        """Probe ``path_name`` inside ``scenario`` (consumes sim time)."""
        started = scenario.loop.now
        connection = scenario.tcp(path_name, self.probe_bytes)
        result = scenario.run_transfer(connection, deadline_s=self.timeout_s,
                                       partial_ok=True)
        elapsed = scenario.loop.now - started
        rtt = connection.subflow.handshake_rtt
        throughput = result.throughput_mbps if result.completed else None
        if throughput is None and connection.bytes_delivered > 0 and elapsed > 0:
            # Partial probe: estimate from what arrived before timeout.
            throughput = connection.bytes_delivered * 8 / elapsed / 1e6
        return ProbeReport(
            path_name=path_name,
            rtt_s=rtt,
            throughput_mbps=throughput,
            probe_bytes=self.probe_bytes,
            elapsed_s=elapsed,
        )
