"""Selection policies: static, adaptive, and oracle.

A policy answers, for one impending flow: which transport (single-path
TCP or MPTCP), on which network (or with which primary subflow), and —
for MPTCP — which congestion control.  The adaptive policy encodes the
paper's findings as decision rules; the oracle bounds what any policy
could achieve.
"""

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.policy.estimator import ConditionEstimator

__all__ = [
    "Decision",
    "SelectionPolicy",
    "AlwaysWifiPolicy",
    "AlwaysMptcpPolicy",
    "BestPathPolicy",
    "PaperAdaptivePolicy",
    "OraclePolicy",
    "STANDARD_POLICIES",
]


@dataclass(frozen=True)
class Decision:
    """A concrete transport choice for one flow."""

    kind: str          # "tcp" | "mptcp"
    path: str          # TCP path, or MPTCP primary
    congestion_control: str = "cubic"  # tcp cc, or coupled/decoupled

    @property
    def strategy_name(self) -> str:
        if self.kind == "tcp":
            return f"tcp-{self.path}"
        return f"mptcp-{self.path}-{self.congestion_control}"


class SelectionPolicy(ABC):
    """Chooses a :class:`Decision` for a flow of a given size."""

    name: str = "policy"

    @abstractmethod
    def decide(
        self,
        estimator: ConditionEstimator,
        flow_bytes: int,
        now: float,
    ) -> Decision:
        """Pick the transport for an imminent ``flow_bytes`` transfer."""


class AlwaysWifiPolicy(SelectionPolicy):
    """Android's shipping policy: WiFi whenever associated."""

    name = "always-wifi"

    def decide(self, estimator, flow_bytes, now) -> Decision:
        return Decision(kind="tcp", path="wifi")


class AlwaysMptcpPolicy(SelectionPolicy):
    """Use both networks for everything (WiFi primary, the OS default)."""

    name = "always-mptcp"

    def decide(self, estimator, flow_bytes, now) -> Decision:
        return Decision(kind="mptcp", path="wifi",
                        congestion_control="decoupled")


class BestPathPolicy(SelectionPolicy):
    """Single-path TCP on whichever network probes faster."""

    name = "best-path-tcp"

    def decide(self, estimator, flow_bytes, now) -> Decision:
        best = _best_path(estimator)
        return Decision(kind="tcp", path=best)


class PaperAdaptivePolicy(SelectionPolicy):
    """The paper's findings, operationalized.

    * Short flows (§3.3/§5.1): MPTCP adds nothing — use single-path TCP
      on the better network.
    * Long flows (§3.3/§5.2): use MPTCP *if the two paths are roughly
      comparable*; the Fig. 7a regime (large disparity) is better served
      by single-path TCP on the fast network.
    * MPTCP details: the better network carries the primary subflow
      (§3.4); decoupled congestion control recovers faster on lossy
      paths when the flow must finish quickly (§3.5).
    """

    name = "paper-adaptive"

    def __init__(
        self,
        short_flow_bytes: int = 256 * 1024,
        comparable_ratio: float = 3.0,
    ) -> None:
        self.short_flow_bytes = short_flow_bytes
        self.comparable_ratio = comparable_ratio

    def decide(self, estimator, flow_bytes, now) -> Decision:
        best = _best_path(estimator)
        if flow_bytes <= self.short_flow_bytes:
            return Decision(kind="tcp", path=best)
        rates = _rates(estimator)
        fast = max(rates.values())
        slow = min(rates.values())
        if slow <= 0 or fast / max(slow, 1e-9) > self.comparable_ratio:
            return Decision(kind="tcp", path=best)
        return Decision(kind="mptcp", path=best,
                        congestion_control="decoupled")


class OraclePolicy(SelectionPolicy):
    """Upper bound: told the measured outcome of every strategy.

    The evaluation harness injects the measured durations before
    calling :meth:`decide`; this policy simply picks the argmin.
    """

    name = "oracle"

    def __init__(self) -> None:
        self.measured: Optional[Dict[str, float]] = None
        self._strategies: Dict[str, Decision] = {}

    def inform(self, measured: Dict[str, float],
               strategies: Dict[str, Decision]) -> None:
        self.measured = measured
        self._strategies = strategies

    def decide(self, estimator, flow_bytes, now) -> Decision:
        if not self.measured:
            return Decision(kind="tcp", path="wifi")
        best = min(self.measured, key=self.measured.get)
        return self._strategies[best]


def _rates(estimator: ConditionEstimator) -> Dict[str, float]:
    rates = {}
    for name, estimate in estimator.paths.items():
        rates[name] = estimate.throughput_mbps or 0.0
    if not rates:
        rates = {"wifi": 0.0, "lte": 0.0}
    return rates


def _best_path(estimator: ConditionEstimator) -> str:
    rates = _rates(estimator)
    return max(rates, key=rates.get)


def STANDARD_POLICIES() -> List[SelectionPolicy]:
    """Fresh instances of the comparison set."""
    return [
        AlwaysWifiPolicy(),
        AlwaysMptcpPolicy(),
        BestPathPolicy(),
        PaperAdaptivePolicy(),
    ]
