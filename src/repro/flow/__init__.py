"""Flow-level fidelity: analytic bandwidth-share transfer engine.

The packet engine (:mod:`repro.scenario` and below) simulates every
segment; this package predicts the same :class:`~repro.workload.report.
TransferReport` from per-subflow bandwidth-share state machines that
only generate events when shares change — a fault edge, a slow-start
doubling, a subflow joining — in the style of flow-level MPTCP
simulators.  Sweeps that only need throughput/duration aggregates run
100–1000× faster at this fidelity (see DESIGN.md §10 for the model and
its error bounds).

Select it per spec (``TransferSpec(fidelity="flow")``) or per run
(``--fidelity flow`` / ``REPRO_FIDELITY=flow``); the
:class:`~repro.workload.session.Session` dispatches transparently and
cache keys include the fidelity, so the two engines never share a
result.

Submodules (imported lazily to keep the spec layer import-light):

* :mod:`repro.flow.fidelity` — run-level fidelity override plumbing;
* :mod:`repro.flow.model` — the analytic throughput model;
* :mod:`repro.flow.engine` — the event-regeneration executor;
* :mod:`repro.flow.validate` — cross-fidelity validation harness.
"""

from repro.flow.fidelity import (
    FIDELITY_ENV,
    apply_fidelity_override,
    resolve_fidelity,
    set_default_fidelity,
)

__all__ = [
    "FIDELITY_ENV",
    "apply_fidelity_override",
    "resolve_fidelity",
    "set_default_fidelity",
]
