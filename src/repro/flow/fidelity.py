"""Run-level fidelity overrides.

A :class:`~repro.workload.spec.TransferSpec` carries its own
``fidelity`` field, but campaigns often want to flip an entire run
without editing specs — "rerun this workload at flow fidelity".  This
module is the single resolution point: an explicit process default
(``set_default_fidelity``, used by the ``--fidelity`` CLI flags) wins,
then the ``REPRO_FIDELITY`` environment variable, then the spec's own
field.

The override is applied *before* sweep tasks are built (see
:meth:`~repro.workload.session.Session.task_for`), so the rewritten
spec — and therefore the cache key — always reflects the fidelity that
actually ran.
"""

import os
from typing import TYPE_CHECKING, Optional

from repro.core.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.workload.spec import TransferSpec

__all__ = [
    "FIDELITY_ENV",
    "apply_fidelity_override",
    "resolve_fidelity",
    "set_default_fidelity",
]

#: Environment override: run every spec at this fidelity.
FIDELITY_ENV = "REPRO_FIDELITY"

_default_fidelity: Optional[str] = None


def _validated(value: str, where: str) -> str:
    # Imported here: the spec module imports the workload package,
    # which imports this module back (Session dispatches on fidelity).
    from repro.workload.spec import FIDELITIES

    if value not in FIDELITIES:
        raise ConfigurationError(
            f"{where}: must be one of {list(FIDELITIES)}, got {value!r}"
        )
    return value


def set_default_fidelity(fidelity: Optional[str]) -> None:
    """Set (or clear, with ``None``) the process-wide fidelity override."""
    global _default_fidelity
    _default_fidelity = (
        None if fidelity is None else _validated(fidelity, "fidelity")
    )


def resolve_fidelity() -> Optional[str]:
    """The active run-level override, or ``None`` (spec decides).

    Precedence: :func:`set_default_fidelity` (CLI flags), then the
    ``REPRO_FIDELITY`` environment variable.
    """
    if _default_fidelity is not None:
        return _default_fidelity
    env = os.environ.get(FIDELITY_ENV)
    if env is not None and env != "":
        return _validated(env, FIDELITY_ENV)
    return None


def apply_fidelity_override(spec: "TransferSpec") -> "TransferSpec":
    """``spec`` rewritten to the active override fidelity, if any."""
    return spec.with_fidelity(resolve_fidelity())
