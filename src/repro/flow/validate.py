"""Cross-fidelity validation: flow engine vs packet engine.

The flow engine is only useful if its aggregates track the packet
engine on the workloads the figures are built from.  This module runs
the same figure-class transfer specs at both fidelities and compares
*median-across-seeds* throughput and duration per condition — medians
because individual packet-engine runs have heavy-tailed outliers (an
unlucky RTO storm can stretch one seed's run 10×) that no rate model
should be asked to chase.

Two bounds are asserted, both calibrated against the packet engine
(see DESIGN.md §10 for the measured error table):

* :data:`DEFAULT_ERROR_BOUND` — the mean relative error across
  conditions for one (workload class, flow size) cell must stay
  within ±20 %.  Measured class means sit within ±13 %.
* :data:`PER_CONDITION_ERROR_BOUND` — no single condition may be off
  by more than ±60 %.  The worst measured cells (deep-buffer
  slow-start collapse the rate model does not follow) reach ±49 %.

Run it directly for the full table::

    PYTHONPATH=src python -m repro.flow.validate

or ``--fast`` for the CI-sized subset.
"""

import argparse
import json
import statistics
import sys
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.workload.session import Session
from repro.workload.spec import ConditionSpec, TransferSpec

__all__ = [
    "DEFAULT_ERROR_BOUND",
    "PER_CONDITION_ERROR_BOUND",
    "VALIDATION_SEEDS",
    "VALIDATION_SIZES",
    "WorkloadClass",
    "FIGURE_CLASSES",
    "CaseResult",
    "ClassResult",
    "ValidationReport",
    "validation_conditions",
    "validate_fidelity",
]

#: Bound on the |mean relative error| across conditions for one
#: (class, size) cell.  Measured maximum: 12.6 % (TCP WiFi 4 MB).
DEFAULT_ERROR_BOUND = 0.20

#: Bound on any single condition's |relative error|.  Measured
#: maximum: 49 % (coupled-LTE 4 MB at a deep-buffer WiFi location
#: whose packet runs collapse out of slow start).
PER_CONDITION_ERROR_BOUND = 0.60

#: Seeds whose median defines each condition's reference value.  Odd
#: spread on purpose: medians need ≥3 samples to shed one outlier.
VALIDATION_SEEDS: Tuple[int, ...] = (1, 12, 23)

#: Flow sizes of the §3.4/§3.5 sweeps (Figs. 3, 9, 10; Table 1 uses
#: the same transfers' durations).
VALIDATION_SIZES: Dict[str, int] = {
    "100KB": 100_000,
    "1MB": 1_000_000,
    "4MB": 4_000_000,
}


@dataclass(frozen=True)
class WorkloadClass:
    """One figure-class workload shape (everything but size/condition)."""

    name: str
    kind: str
    #: Extra :class:`~repro.workload.spec.TransferSpec` fields
    #: (``path``/``cc`` for TCP, ``primary``/``cc`` for MPTCP).
    spec_kwargs: Dict[str, Any] = field(default_factory=dict)

    def spec(self, condition: ConditionSpec, nbytes: int,
             seed: int) -> TransferSpec:
        return TransferSpec(kind=self.kind, condition=condition,
                            nbytes=nbytes, seed=seed, **self.spec_kwargs)


#: The four workload classes behind the tier-1 figures: single-path
#: TCP on each technology (Fig. 3 / Table 1) and the two MPTCP
#: corners that bracket Figs. 9/10 (decoupled-primary-WiFi vs
#: coupled-primary-LTE).
FIGURE_CLASSES: Tuple[WorkloadClass, ...] = (
    WorkloadClass("fig03.tcp-wifi", "tcp", {"path": "wifi", "cc": "cubic"}),
    WorkloadClass("fig03.tcp-lte", "tcp", {"path": "lte", "cc": "cubic"}),
    WorkloadClass("fig09_10.mptcp-dec-wifi", "mptcp",
                  {"primary": "wifi", "cc": "decoupled"}),
    WorkloadClass("fig09_10.mptcp-cpl-lte", "mptcp",
                  {"primary": "lte", "cc": "coupled"}),
)


@dataclass
class CaseResult:
    """One (class, size, condition) comparison cell."""

    class_name: str
    size_label: str
    condition_index: int
    packet_throughput_mbps: float
    flow_throughput_mbps: float
    #: Signed relative error, flow vs packet (medians across seeds).
    throughput_error: float
    packet_duration_s: float
    flow_duration_s: float
    duration_error: float


@dataclass
class ClassResult:
    """All conditions of one (class, size) cell, plus its aggregate."""

    class_name: str
    size_label: str
    cases: List[CaseResult]
    mean_throughput_error: float
    max_abs_condition_error: float

    def within(self, class_bound: float, condition_bound: float) -> bool:
        return (abs(self.mean_throughput_error) <= class_bound
                and self.max_abs_condition_error <= condition_bound)


@dataclass
class ValidationReport:
    """Outcome of one cross-fidelity validation run."""

    classes: List[ClassResult]
    class_bound: float
    condition_bound: float
    seeds: Tuple[int, ...]
    condition_count: int
    packet_wall_s: float
    flow_wall_s: float

    @property
    def speedup(self) -> float:
        if self.flow_wall_s <= 0.0:
            return float("inf")
        return self.packet_wall_s / self.flow_wall_s

    @property
    def ok(self) -> bool:
        return all(
            c.within(self.class_bound, self.condition_bound)
            for c in self.classes
        )

    @property
    def worst_class_error(self) -> float:
        return max(
            (abs(c.mean_throughput_error) for c in self.classes),
            default=0.0,
        )

    @property
    def worst_condition_error(self) -> float:
        return max(
            (c.max_abs_condition_error for c in self.classes), default=0.0
        )

    def assert_ok(self) -> None:
        """Raise ``AssertionError`` listing every out-of-bound cell."""
        failures = [
            f"{c.class_name}/{c.size_label}: mean "
            f"{c.mean_throughput_error:+.1%} (bound "
            f"±{self.class_bound:.0%}), worst condition "
            f"{c.max_abs_condition_error:.1%} (bound "
            f"±{self.condition_bound:.0%})"
            for c in self.classes
            if not c.within(self.class_bound, self.condition_bound)
        ]
        assert not failures, (
            "flow fidelity out of calibration:\n  " + "\n  ".join(failures)
        )

    def render(self) -> str:
        lines = [
            "cross-fidelity validation (flow vs packet, median of "
            f"seeds {list(self.seeds)}, {self.condition_count} conditions)",
            f"{'class':30s} {'size':>6s} {'mean err':>9s} "
            f"{'worst cond':>10s}  per-condition",
        ]
        for c in self.classes:
            per_cond = " ".join(
                f"{case.throughput_error:+.0%}" for case in c.cases
            )
            lines.append(
                f"{c.class_name:30s} {c.size_label:>6s} "
                f"{c.mean_throughput_error:+8.1%} "
                f"{c.max_abs_condition_error:9.1%}  [{per_cond}]"
            )
        lines.append(
            f"bounds: class mean ±{self.class_bound:.0%}, per condition "
            f"±{self.condition_bound:.0%} -> "
            f"{'PASS' if self.ok else 'FAIL'}"
        )
        lines.append(
            f"wall clock: packet {self.packet_wall_s:.2f}s, flow "
            f"{self.flow_wall_s:.3f}s ({self.speedup:.0f}x)"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "classes": [asdict(c) for c in self.classes],
            "class_bound": self.class_bound,
            "condition_bound": self.condition_bound,
            "seeds": list(self.seeds),
            "condition_count": self.condition_count,
            "packet_wall_s": self.packet_wall_s,
            "flow_wall_s": self.flow_wall_s,
            "speedup": self.speedup,
            "worst_class_error": self.worst_class_error,
            "worst_condition_error": self.worst_condition_error,
            "ok": self.ok,
        }


def validation_conditions(count: int = 4) -> List[ConditionSpec]:
    """The default-seed emulated locations the bounds were fit on."""
    from repro.linkem.conditions import make_conditions

    return [
        ConditionSpec.from_condition(c) for c in make_conditions()[:count]
    ]


def _median(values: Sequence[Optional[float]], what: str) -> float:
    present = [v for v in values if v is not None and v > 0.0]
    if not present:
        raise ConfigurationError(
            f"validation transfer never completed ({what}); cannot "
            "compare fidelities on a workload that hits its deadline"
        )
    return statistics.median(present)


def validate_fidelity(
    conditions: Optional[Sequence[ConditionSpec]] = None,
    sizes: Optional[Dict[str, int]] = None,
    seeds: Sequence[int] = VALIDATION_SEEDS,
    classes: Sequence[WorkloadClass] = FIGURE_CLASSES,
    workers: Optional[int] = None,
    class_bound: float = DEFAULT_ERROR_BOUND,
    condition_bound: float = PER_CONDITION_ERROR_BOUND,
) -> ValidationReport:
    """Run every (class, size, condition, seed) cell at both fidelities.

    Each fidelity runs as one uncached :meth:`Session.run_many` batch
    — the exact sweep path experiments use — and the two batch wall
    clocks give the headline speedup.  Nothing is asserted here; call
    :meth:`ValidationReport.assert_ok` (tests do) or inspect the
    report.
    """
    conditions = (
        list(conditions) if conditions is not None
        else validation_conditions()
    )
    sizes = dict(sizes) if sizes is not None else dict(VALIDATION_SIZES)
    session = Session()

    cells = [
        (cls, size_label, nbytes, cond_index, condition)
        for cls in classes
        for size_label, nbytes in sizes.items()
        for cond_index, condition in enumerate(conditions)
    ]
    packet_specs, flow_specs = [], []
    for cls, _, nbytes, _, condition in cells:
        for seed in seeds:
            spec = cls.spec(condition, nbytes, seed)
            packet_specs.append(spec)
            flow_specs.append(spec.with_fidelity("flow"))

    started = time.perf_counter()
    packet_reports = session.run_many(
        packet_specs, workers=workers, cache=False
    )
    packet_wall_s = time.perf_counter() - started
    started = time.perf_counter()
    flow_reports = session.run_many(flow_specs, workers=workers, cache=False)
    flow_wall_s = time.perf_counter() - started

    results: Dict[Tuple[str, str], ClassResult] = {}
    offset = 0
    for cls, size_label, _, cond_index, _ in cells:
        chunk = slice(offset, offset + len(seeds))
        offset += len(seeds)
        what = f"{cls.name}/{size_label}/cond{cond_index}"
        packet_tput = _median(
            [r.throughput_mbps for r in packet_reports[chunk]],
            f"packet {what}",
        )
        flow_tput = _median(
            [r.throughput_mbps for r in flow_reports[chunk]],
            f"flow {what}",
        )
        packet_dur = _median(
            [r.duration_s for r in packet_reports[chunk]], f"packet {what}"
        )
        flow_dur = _median(
            [r.duration_s for r in flow_reports[chunk]], f"flow {what}"
        )
        case = CaseResult(
            class_name=cls.name,
            size_label=size_label,
            condition_index=cond_index,
            packet_throughput_mbps=packet_tput,
            flow_throughput_mbps=flow_tput,
            throughput_error=(flow_tput - packet_tput) / packet_tput,
            packet_duration_s=packet_dur,
            flow_duration_s=flow_dur,
            duration_error=(flow_dur - packet_dur) / packet_dur,
        )
        results.setdefault(
            (cls.name, size_label),
            ClassResult(cls.name, size_label, [], 0.0, 0.0),
        ).cases.append(case)

    class_results = []
    for result in results.values():
        errors = [case.throughput_error for case in result.cases]
        result.mean_throughput_error = statistics.mean(errors)
        result.max_abs_condition_error = max(abs(e) for e in errors)
        class_results.append(result)

    return ValidationReport(
        classes=class_results,
        class_bound=class_bound,
        condition_bound=condition_bound,
        seeds=tuple(seeds),
        condition_count=len(conditions),
        packet_wall_s=packet_wall_s,
        flow_wall_s=flow_wall_s,
    )


def main(argv: Optional[Sequence[int]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.flow.validate",
        description="Validate flow-fidelity aggregates against the "
        "packet engine on figure-class workloads.",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="CI-sized subset: 2 conditions, sizes 100KB/1MB",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="sweep worker processes (default: REPRO_WORKERS/auto)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    args = parser.parse_args(argv)

    conditions = validation_conditions(2 if args.fast else 4)
    sizes = dict(VALIDATION_SIZES)
    if args.fast:
        sizes.pop("4MB")
    report = validate_fidelity(
        conditions=conditions, sizes=sizes, workers=args.workers
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
