"""The flow-level transfer executor.

Executes one :class:`~repro.workload.spec.TransferSpec` without an
event loop or packets: each subflow is a bandwidth-share state machine
(slow-start ramp → steady rate), and simulated time advances straight
to the next instant at which any share changes — a fault edge, a
subflow establishing, a congestion-window growth step, or the
predicted completion itself.  Whenever shares change, the pending
events are simply regenerated from the new rates (the dt-simulator
idiom), so a transfer costs tens of iterations instead of one event
per segment.

The output is the same canonical
:class:`~repro.workload.report.TransferReport` the packet engine
produces: a densified delivery log (so ``time_to_bytes`` and the
figure pipelines work unchanged), per-subflow logs keyed by path name,
a metrics snapshot that reconciles exactly with the emitted trace
events, and the fired fault edges in
:class:`~repro.faults.injector.AppliedFault` form.

Flow runs emit a *reduced* observability stream — ``subflow_add``,
``sched``, ``send`` (per rate interval, not per segment), and
``fault_state`` — all schema-valid :mod:`repro.obs.trace` kinds, so
``obs summarize`` and the fault timeline still render.

Determinism: the only randomness is the packet engine's own
``jitter.{path}``/``trace.{path}`` streams (consumed identically, see
:func:`repro.flow.model.path_flow_params`); everything else is pure
arithmetic on the spec.  Reports are therefore bit-identical for any
worker count.
"""

import math
from typing import Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.core.rng import DEFAULT_SEED, RngStreams
from repro.faults.injector import AppliedFault
from repro.faults.spec import FaultEvent
from repro.flow.model import (
    CONGESTION_AVOIDANCE_GROWTH,
    FlowPathParams,
    LOSS_CONVERGENCE_EVENTS,
    SLOW_START_GROWTH,
    ge_stationary_loss,
    loss_transient_factor,
    path_flow_params,
    pipe_capacity_bytes,
    steady_goodput_bytes_s,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceRecorder
from repro.tcp.config import TcpConfig
from repro.workload.report import TransferReport
from repro.workload.spec import KIND_TCP, TransferSpec

__all__ = ["run_flow_spec"]

_EPS = 1e-9
#: Loss events (segments × loss rate) past which the slow-start
#: transient is below float resolution: exp(-50) ≈ 2e-22, so the
#: blended cap is bit-identical to the converged one and can be
#: memoized independently of further progress.
_TRANSIENT_SPENT = 50.0 * LOSS_CONVERGENCE_EVENTS
#: Densification step of the delivery logs (matches the packet-side
#: throughput-series step in :mod:`repro.analysis.throughput`).
_LOG_STEP_S = 0.05
#: Hard bound on engine iterations — generous (a worst-case run has a
#: few thousand breakpoints) but keeps a modelling bug from spinning.
_MAX_ITERATIONS = 200_000


class _PathState:
    """One path's live share inputs: base params + active fault edges."""

    def __init__(self, params: FlowPathParams) -> None:
        self.params = params
        #: Bumped on every fault edge; subflow rate memos key on it.
        self.epoch = 0
        #: Links dropped (``outage``/``blackhole``): packets vanish.
        self.down = False
        #: Explicit admin removal (``iface_down``, detected blackhole):
        #: MPTCP stops scheduling onto the path; plain TCP — whose
        #: links are untouched by the admin signal — keeps sending.
        self.admin_down = False
        self.rate_factor = 1.0
        self.extra_delay_s = 0.0
        self.loss_rate = params.loss_rate
        self._saved_loss: Dict[int, float] = {}

    @property
    def rtt_s(self) -> float:
        # A delay spike adds one-way delay on both links of the path.
        return self.params.rtt_s + 2.0 * self.extra_delay_s

    @property
    def wire_bytes_s(self) -> float:
        if self.down:
            return 0.0
        return self.params.wire_bytes_s * self.rate_factor

    def apply_edge(self, index: int, event: FaultEvent, edge: str) -> None:
        self.epoch += 1
        inject = edge == "inject"
        kind = event.kind
        if kind == "outage":
            self.down = inject
        elif kind == "blackhole":
            self.down = inject
            if event.detected:
                self.admin_down = inject
        elif kind == "iface_down":
            self.admin_down = inject
        elif kind == "rate_collapse":
            # The link knob scales from the *base* rate and restores it
            # outright, so the last edge wins (no compounding).
            self.rate_factor = event.factor if inject else 1.0
        elif kind == "delay_spike":
            self.extra_delay_s = event.extra_delay_s if inject else 0.0
        elif kind == "burst_loss":
            if inject:
                self._saved_loss[index] = self.loss_rate
                self.loss_rate = ge_stationary_loss(
                    event.p_good_to_bad, event.p_bad_to_good,
                    event.p_good, event.p_bad,
                )
            else:
                self.loss_rate = self._saved_loss.pop(
                    index, self.params.loss_rate
                )


class _Subflow:
    """One subflow's bandwidth-share state machine."""

    def __init__(
        self,
        subflow_id: int,
        state: _PathState,
        config: TcpConfig,
        cc: str,
        is_mptcp: bool,
        established_at: Optional[float],
        gated: bool = False,
    ) -> None:
        self.subflow_id = subflow_id
        self.state = state
        self.config = config
        self.cc = cc
        self.is_mptcp = is_mptcp
        #: Handshake completion; ``None`` = not scheduled yet
        #: (singlepath standby subflows open only on failover).
        self.established_at = established_at
        self.established = False
        #: Carries no data while gated (backup-mode standby).
        self.gated = gated
        self.cwnd = float(config.initial_cwnd_segments)
        self.ssthresh = (
            float(config.initial_ssthresh_segments)
            if config.initial_ssthresh_segments is not None
            else math.inf
        )
        self.steady = False
        self.next_ramp_at: Optional[float] = None
        #: Set while the path is unusable; cleared by a fresh ramp.
        self.interrupted = False
        self.delivered = 0.0
        #: Residual bytes this subflow still owes once the source has
        #: drained (``None`` until drain mode allocates it).
        self.drain_target: Optional[float] = None
        #: Cumulative (time, bytes) breakpoints, densified at the end.
        self.log: List[Tuple[float, float]] = []
        self.sent_bytes_int = 0
        self.send_events = 0
        self.handshake_rtt_s: Optional[float] = None
        # Rate-model memos (see steady_cap / pipe_bytes).
        self._cap_key: Optional[Tuple[int, float]] = None
        self._cap_value = 0.0
        self._pipe_key: Optional[Tuple[int, float]] = None
        self._pipe_value = 0.0

    # -- share inputs ---------------------------------------------------
    @property
    def path_usable(self) -> bool:
        if self.state.down:
            return False
        if self.is_mptcp and self.state.admin_down:
            return False
        return True

    def steady_cap(self) -> float:
        # Pure in (fault-state epoch, delivered); the engine evaluates
        # it several times per breakpoint, so memoize on exact state —
        # a cache hit returns the identical float (determinism-safe).
        # On a lossless path the cap does not depend on progress at
        # all, and once the loss transient has fully decayed (beyond
        # float resolution) it never changes again; both collapse the
        # key so the memo survives across breakpoints.
        loss = self.state.loss_rate
        segments = self.delivered / self.config.mss_bytes
        if loss <= 0.0:
            key = (self.state.epoch, -1.0)
        elif segments * loss >= _TRANSIENT_SPENT:
            key = (self.state.epoch, -2.0)
            segments = math.inf
        else:
            key = (self.state.epoch, self.delivered)
        if key == self._cap_key:
            return self._cap_value
        if not self.path_usable:
            value = 0.0
        else:
            value = steady_goodput_bytes_s(
                self.state.wire_bytes_s, self.state.rtt_s,
                loss, self.config, self.cc,
                segments_delivered=segments,
            )
        self._cap_key = key
        self._cap_value = value
        return value

    def rate(self) -> float:
        """Current goodput share, bytes per second."""
        if not self.established or self.gated:
            return 0.0
        if (
            self.drain_target is not None
            and self.delivered >= self.drain_target - 0.5
        ):
            return 0.0  # committed backlog fully delivered
        cap = self.steady_cap()
        if cap <= 0.0:
            return 0.0
        if self.steady:
            return cap
        cwnd_rate = self.cwnd * self.config.mss_bytes / self.state.rtt_s
        return min(cap, cwnd_rate)

    def pipe_bytes(self, rate: float) -> float:
        """This subflow's maximum commitment (BDP + bloated queue)."""
        key = (self.state.epoch, rate)
        if key == self._pipe_key:
            return self._pipe_value
        value = pipe_capacity_bytes(
            rate, self.state.rtt_s, self.state.loss_rate,
            self.config, self.cc, self.state.params.queue_packets,
        )
        self._pipe_key = key
        self._pipe_value = value
        return value

    def inflight_bytes(self, rate: float) -> float:
        """Committed-but-undelivered bytes currently in the pipe.

        The live congestion window bounds the commitment while the
        subflow is still ramping; at steady state the window has grown
        to cover the whole pipe (including the DropTail queue it keeps
        full on a capacity-limited path).
        """
        if rate <= 0.0:
            return 0.0
        pipe = self.pipe_bytes(rate)
        if self.steady:
            return pipe
        return min(self.cwnd * self.config.mss_bytes, pipe)

    # -- transitions ----------------------------------------------------
    def next_time(self, now: float) -> Optional[float]:
        if not self.established:
            if self.established_at is not None and self.established_at > now:
                return self.established_at
            return None
        return self.next_ramp_at

    def establish(self, now: float) -> None:
        self.established = True
        self.handshake_rtt_s = self.state.rtt_s
        self.log.append((now, 0.0))
        self._begin_ramp(now)

    def _begin_ramp(self, now: float) -> None:
        self.steady = False
        self.next_ramp_at = (
            now + self.state.rtt_s if self.path_usable and not self.gated
            else None
        )

    def ramp_step(self, now: float) -> None:
        cap = self.steady_cap()
        if cap <= 0.0 or self.gated:
            self.next_ramp_at = None
            return
        # The window grows until it covers the larger of the current
        # cap's own window (the slow-start overshoot riding the loss
        # transient) and the committed pipe: on a capacity-limited
        # path the excess sits in the bottleneck queue (bufferbloat),
        # and that commitment is what the drain model measures.
        # Delivered rate stays capped throughout (see :meth:`rate`).
        target = max(cap * self.state.rtt_s, self.pipe_bytes(cap))
        if self.cwnd * self.config.mss_bytes >= target - 0.5:
            # Stay event-driven while the loss transient is still
            # decaying the cap; go silent once converged.
            transient = loss_transient_factor(
                self.delivered / self.config.mss_bytes,
                self.state.loss_rate,
            )
            if transient > 0.02:
                self.next_ramp_at = now + self.state.rtt_s
            else:
                self.steady = True
                self.next_ramp_at = None
            return
        if self.cwnd < self.ssthresh:
            self.cwnd = min(self.cwnd * SLOW_START_GROWTH, self.ssthresh)
        else:
            self.cwnd *= CONGESTION_AVOIDANCE_GROWTH
        self.next_ramp_at = now + self.state.rtt_s

    def on_path_change(self, now: float) -> None:
        """Re-derive ramp state after a fault edge touched the path."""
        if not self.established:
            return
        if not self.path_usable:
            self.interrupted = True
            self.next_ramp_at = None
            return
        if self.interrupted:
            # Resuming after an unusable episode: the packet stack
            # comes back from an RTO with the loss window and half the
            # old share as ssthresh.
            cap = self.steady_cap()
            cap_segments = (
                cap * self.state.rtt_s / self.config.mss_bytes
                if cap > 0.0 else self.cwnd
            )
            self.ssthresh = max(2.0, cap_segments / 2.0)
            self.cwnd = float(self.config.loss_cwnd_segments)
            self.interrupted = False
            self._begin_ramp(now)
        elif self.steady:
            # Capacity moved (collapse/restore, loss episode): keep the
            # current window and let the ramp re-approach the new cap.
            self._begin_ramp(now)
        elif self.next_ramp_at is None and not self.gated:
            self._begin_ramp(now)

    def on_ungated(self, now: float) -> None:
        self.gated = False
        if self.established and self.next_ramp_at is None and not self.steady:
            self._begin_ramp(now)


def _fault_edges(spec: TransferSpec) -> List[Tuple[float, int, int, str, FaultEvent]]:
    """Inject/clear edges sorted by (time, arming order), like the
    packet-side injector's event-loop callbacks."""
    edges: List[Tuple[float, int, int, str, FaultEvent]] = []
    if spec.faults is None:
        return edges
    order = 0
    for index, event in enumerate(spec.faults.events):
        edges.append((event.at_s, order, index, "inject", event))
        order += 1
        clears_at = event.clears_at
        if clears_at is not None:
            edges.append((clears_at, order, index, "clear", event))
            order += 1
    edges.sort(key=lambda edge: (edge[0], edge[1]))
    return edges


def _densify(points: List[Tuple[float, float]]) -> List[Tuple[float, int]]:
    """Breakpoints → a packet-log-shaped cumulative (time, bytes) list.

    Inserts grid points every ``_LOG_STEP_S`` inside long constant-rate
    intervals so bisection helpers (``time_to_bytes``) resolve
    intermediate flow sizes, and keeps only strictly increasing byte
    counts plus the first point (matching packet logs, which only
    record deliveries).
    """
    out: List[Tuple[float, int]] = []
    last_bytes = -1
    for i, (t, cum) in enumerate(points):
        if i > 0:
            t0, c0 = points[i - 1]
            span = t - t0
            if span > _LOG_STEP_S and cum > c0:
                steps = int(span / _LOG_STEP_S)
                for k in range(1, steps + 1):
                    tk = t0 + k * _LOG_STEP_S
                    if tk >= t - _EPS:
                        break
                    ck = int(round(c0 + (cum - c0) * (tk - t0) / span))
                    if ck > last_bytes:
                        out.append((tk, ck))
                        last_bytes = ck
        ci = int(round(cum))
        if ci > last_bytes or not out:
            out.append((t, ci))
            last_bytes = ci
    return out


class _FlowRun:
    """One transfer's flow-level execution (see :func:`run_flow_spec`)."""

    def __init__(
        self, spec: TransferSpec, seed: int,
        recorder: Optional[TraceRecorder],
    ) -> None:
        self.spec = spec
        self.recorder = recorder
        self.config = spec.tcp_config() or TcpConfig()
        rng = RngStreams(seed)
        self.states = {
            path_spec.name: _PathState(
                path_flow_params(path_spec, spec.direction, rng)
            )
            for path_spec in spec.condition.paths
        }
        self.edges = _fault_edges(spec)
        self.edge_i = 0
        self.applied: List[AppliedFault] = []
        self.now = 0.0
        self.delivered = 0.0
        self.log: List[Tuple[float, float]] = [(0.0, 0.0)]
        self.completed_at: Optional[float] = None
        #: True once the remaining bytes are split into per-subflow
        #: committed-backlog drains (see :meth:`_allocate_drain`).
        self._draining = False
        self._fire_due_edges()  # schedules armed at t=0 apply before data
        self.subflows = self._build_subflows()
        #: Multipath runs track scheduler commitment (drain model);
        #: single-subflow runs finish on plain delivery.
        self._multipath = len(self.subflows) > 1
        self._mode = (
            spec.mptcp_options().mode if spec.kind != KIND_TCP else "tcp"
        )
        self._backup_names = self._backup_set()
        self._refresh_gating()

    # -- construction ---------------------------------------------------
    def _build_subflows(self) -> List[_Subflow]:
        spec = self.spec
        if spec.kind == KIND_TCP:
            state = self.states[spec.path]
            subflow = _Subflow(
                0, state, self.config, cc=spec.cc, is_mptcp=False,
                established_at=1.5 * state.rtt_s,
            )
            return [subflow]
        options = spec.mptcp_options()
        primary_state = self.states[options.primary]
        primary = _Subflow(
            0, primary_state, self.config, spec.cc, is_mptcp=True,
            established_at=1.5 * primary_state.rtt_s,
        )
        subflows = [primary]
        join_at = (
            0.0 if options.simultaneous_join
            else primary_state.rtt_s
            + options.join_delay_rtts * primary_state.rtt_s
            + options.join_delay_s
        )
        next_id = 1
        for path_spec in spec.condition.paths:
            if path_spec.name == options.primary:
                continue
            state = self.states[path_spec.name]
            established_at: Optional[float] = join_at + 1.5 * state.rtt_s
            if options.mode == "singlepath":
                established_at = None  # standby: opened on failover only
            subflows.append(
                _Subflow(
                    next_id, state, self.config, spec.cc, is_mptcp=True,
                    established_at=established_at,
                )
            )
            next_id += 1
        return subflows

    def _backup_set(self) -> frozenset:
        if self._mode != "backup":
            return frozenset()
        options = self.spec.mptcp_options()
        if options.backup_paths is not None:
            return frozenset(options.backup_paths)
        return frozenset(
            name for name in self.states if name != options.primary
        )

    # -- gating / failover ----------------------------------------------
    def _refresh_gating(self) -> None:
        if self._mode == "backup":
            active_ok = any(
                sf.path_usable and sf.established_at is not None
                for sf in self.subflows
                if sf.state.params.name not in self._backup_names
            )
            for sf in self.subflows:
                if sf.state.params.name in self._backup_names:
                    if active_ok:
                        sf.gated = True
                        sf.next_ramp_at = None
                    elif sf.gated:
                        sf.on_ungated(self.now)
        elif self._mode == "singlepath":
            primary = self.subflows[0]
            if not primary.path_usable:
                for sf in self.subflows[1:]:
                    if sf.established_at is None:
                        # Failover: open the standby subflow now.
                        sf.established_at = self.now + 1.5 * sf.state.rtt_s
                        primary.gated = True
                        break

    # -- observation -----------------------------------------------------
    def _emit(self, kind: str, time: float, **kwargs) -> None:
        if self.recorder is not None:
            self.recorder.emit(kind, time, **kwargs)

    def _emit_send(self, subflow: _Subflow, time: float) -> None:
        """One ``send`` per subflow per rate interval (not per segment)."""
        total = int(round(subflow.delivered))
        delta = total - subflow.sent_bytes_int
        if delta <= 0:
            return
        subflow.sent_bytes_int = total
        subflow.send_events += 1
        self._emit(
            "send", time, path=subflow.state.params.name, flow_id=0,
            subflow_id=subflow.subflow_id, length=delta, rxt=False,
        )

    # -- execution -------------------------------------------------------
    def _fire_due_edges(self) -> None:
        while (
            self.edge_i < len(self.edges)
            and self.edges[self.edge_i][0] <= self.now + _EPS
        ):
            _, _, index, edge, event = self.edges[self.edge_i]
            self.edge_i += 1
            self.states[event.path].apply_edge(index, event, edge)
            self.applied.append(
                AppliedFault(self.now, edge, index, event.kind, event.path)
            )
            self._emit(
                "fault_state", self.now, path=event.path,
                state=f"{event.kind}:{edge}", index=index,
            )
            for sf in getattr(self, "subflows", ()):
                if sf.state.params.name == event.path:
                    sf.on_path_change(self.now)
                    self._emit_sched(sf)
            # Rates just moved: any committed-backlog split is stale.
            # Clearing it re-derives the commitment from the new shares
            # (the packet stack's failover reinjection, approximately).
            self._clear_drain()

    def _clear_drain(self) -> None:
        self._draining = False
        for sf in getattr(self, "subflows", ()):
            sf.drain_target = None

    def _allocate_drain(self, rates: List[float]) -> None:
        """Split the remaining bytes along current in-flight pipes.

        Called the moment the scheduler's total *commitment*
        (delivered + in-flight) covers the transfer — the source has
        drained.  From here each subflow only delivers what was
        already assigned to it, and the slowest pipe sets the
        completion time (the straggler tail of the paper's Figs.
        9/10).  A subflow that joins after this point carries nothing,
        exactly like an MP_JOIN completing after the source emptied.
        """
        remaining = max(0.0, float(self.spec.nbytes) - self.delivered)
        inflight = [
            sf.inflight_bytes(rate)
            for sf, rate in zip(self.subflows, rates)
        ]
        total = sum(inflight)
        if total <= _EPS:
            return
        for sf, committed in zip(self.subflows, inflight):
            sf.drain_target = (
                sf.delivered + remaining * committed / total
                if committed > 0.0 else None
            )
        self._draining = True

    def _emit_sched(self, subflow: _Subflow) -> None:
        if subflow.established:
            self._emit(
                "sched", self.now, path=subflow.state.params.name,
                flow_id=0, subflow_id=subflow.subflow_id,
                rate_bytes_s=round(subflow.rate(), 3),
            )

    def run(self) -> None:
        nbytes = float(self.spec.nbytes)
        deadline = self.spec.deadline_s
        for _ in range(_MAX_ITERATIONS):
            rates = [sf.rate() for sf in self.subflows]
            total_rate = sum(rates)
            t_next = deadline
            if self.edge_i < len(self.edges):
                t_next = min(t_next, max(self.now, self.edges[self.edge_i][0]))
            for sf in self.subflows:
                transition = sf.next_time(self.now)
                if transition is not None and transition > self.now + _EPS:
                    t_next = min(t_next, transition)
            finishing = False
            if self._draining:
                # Each subflow drains its own committed share; its
                # target-reach instant is a share transition.
                for sf, rate in zip(self.subflows, rates):
                    if sf.drain_target is not None and rate > _EPS:
                        t_reach = (
                            self.now + (sf.drain_target - sf.delivered) / rate
                        )
                        if t_reach <= t_next + _EPS:
                            t_next = min(t_next, max(self.now, t_reach))
            elif self._multipath and total_rate > _EPS:
                # The source drains when the scheduler's commitment
                # (delivered + in-flight) covers the transfer, which
                # runs ahead of delivery by the in-flight sum.
                inflight_total = sum(
                    sf.inflight_bytes(rate)
                    for sf, rate in zip(self.subflows, rates)
                )
                remaining = nbytes - self.delivered
                if remaining <= inflight_total + 0.5:
                    self._allocate_drain(rates)
                    if self._draining:
                        continue
                else:
                    t_drain = (
                        self.now
                        + (remaining - inflight_total) / total_rate
                    )
                    if t_drain <= t_next + _EPS:
                        t_next = min(t_next, max(self.now, t_drain))
            elif total_rate > _EPS:
                t_finish = (
                    self.now + (nbytes - self.delivered) / total_rate
                )
                if t_finish <= t_next + _EPS:
                    t_next = min(t_next, t_finish)
                    finishing = True
            dt = max(0.0, t_next - self.now)
            if dt > 0.0:
                for sf, rate in zip(self.subflows, rates):
                    if rate > 0.0:
                        delta = rate * dt
                        if sf.drain_target is not None:
                            delta = min(
                                delta,
                                max(0.0, sf.drain_target - sf.delivered),
                            )
                        if delta > 0.0:
                            sf.delivered += delta
                            self.delivered += delta
                            sf.log.append((t_next, sf.delivered))
                            self._emit_send(sf, t_next)
                self.log.append((t_next, min(self.delivered, nbytes)))
            self.now = t_next
            if finishing and self.delivered >= nbytes - 0.5:
                self.delivered = nbytes
                self.completed_at = self.now
                return
            if self._draining and self.delivered >= nbytes - 0.5:
                pending = any(
                    sf.drain_target is not None
                    and sf.delivered < sf.drain_target - 0.5
                    for sf in self.subflows
                )
                if not pending:
                    self.delivered = nbytes
                    self.completed_at = self.now
                    return
            if self.now >= deadline - _EPS:
                return
            self._fire_due_edges()
            for sf in self.subflows:
                if (
                    not sf.established
                    and sf.established_at is not None
                    and sf.established_at <= self.now + _EPS
                ):
                    sf.establish(self.now)
                    self._emit(
                        "subflow_add", self.now,
                        path=sf.state.params.name, flow_id=0,
                        subflow_id=sf.subflow_id,
                        rtt_s=sf.handshake_rtt_s,
                    )
                    self._emit_sched(sf)
                elif (
                    sf.next_ramp_at is not None
                    and sf.next_ramp_at <= self.now + _EPS
                ):
                    sf.ramp_step(self.now)
            self._refresh_gating()
        raise ConfigurationError(
            f"flow engine exceeded {_MAX_ITERATIONS} iterations for "
            f"spec {self.spec.key()!r} — degenerate fault schedule?"
        )

    # -- reporting -------------------------------------------------------
    def report(self) -> TransferReport:
        registry = MetricsRegistry()
        subflow_logs: Dict[str, List[Tuple[float, int]]] = {}
        for sf in self.subflows:
            if sf.established_at is None and not sf.established:
                continue  # singlepath standby that never opened
            name = sf.state.params.name
            subflow_logs[name] = _densify(sf.log) if sf.log else []
            labels = {"path": name, "subflow": str(sf.subflow_id)}
            # segments_sent counts emitted (aggregate) send events so
            # the reduced trace reconciles exactly with the snapshot.
            registry.counter("segments_sent", **labels).inc(sf.send_events)
            registry.counter("bytes_sent", **labels).inc(sf.sent_bytes_int)
            registry.counter("retransmits", **labels).inc(0)
            registry.counter("fast_retransmits", **labels).inc(0)
            registry.counter("timeouts", **labels).inc(0)
            if sf.established and sf.handshake_rtt_s is not None:
                registry.histogram("handshake_rtt_s", path=name).observe(
                    sf.handshake_rtt_s
                )
        return TransferReport(
            total_bytes=self.spec.nbytes,
            started_at=0.0,
            completed_at=self.completed_at,
            delivery_log=_densify(self.log),
            subflow_delivery_logs=subflow_logs,
            retransmits=0,
            timeouts=0,
            label=self.spec.key(),
            metrics=registry.snapshot(),
            faults=[fault.to_dict() for fault in self.applied],
        )


def run_flow_spec(
    spec: TransferSpec,
    seed: Optional[int] = None,
    recorder: Optional[TraceRecorder] = None,
) -> TransferReport:
    """Execute ``spec`` at flow fidelity and report canonically.

    Mirrors the packet path's seed resolution: the spec's own seed
    wins, then the explicit argument, then :data:`DEFAULT_SEED`.
    """
    resolved = (
        spec.seed if spec.seed is not None
        else (seed if seed is not None else DEFAULT_SEED)
    )
    run = _FlowRun(spec, resolved, recorder)
    run.run()
    return run.report()
