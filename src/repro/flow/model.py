"""The analytic throughput model behind the flow engine.

A flow-level simulator replaces per-packet dynamics with a per-subflow
*rate*: the minimum of what the link can carry, what the receive
window allows, and what the loss process sustains (the Mathis bound).
Short transfers are dominated by slow start, so the engine ramps each
subflow's congestion window geometrically per RTT before handing over
to the steady-state rate; :mod:`repro.flow.engine` regenerates events
whenever any of these terms changes.

All rates in this module are *payload goodput* in bytes per second:
link capacities are discounted by the TCP/IP header overhead the
packet engine pays per segment (``mss / (mss + 40)``) and by the loss
rate (lost segments are retransmitted, so the goodput share of the
wire is ``1 - p``).

The model is calibrated against the packet engine by
:mod:`repro.flow.validate`; DESIGN.md §10 documents what each term
does and does not capture.
"""

import math
from dataclasses import dataclass

from repro.core.packet import TCP_HEADER_BYTES
from repro.core.rng import RngStreams
from repro.tcp.config import TcpConfig
from repro.workload.spec import PathSpec

__all__ = [
    "CONGESTION_AVOIDANCE_GROWTH",
    "CUBIC_RESPONSE_CONSTANT",
    "DRAIN_QUEUE_FILL",
    "FlowPathParams",
    "LIA_FACTOR",
    "RENO_RESPONSE_CONSTANT",
    "SLOW_START_GROWTH",
    "ge_stationary_loss",
    "loss_limited_bytes_s",
    "path_flow_params",
    "pipe_capacity_bytes",
    "steady_goodput_bytes_s",
]

#: Coupled congestion control (LIA/OLIA) keeps the *aggregate* no more
#: aggressive than one TCP; per subflow that shows up as a reduced
#: loss-limited rate (factor ``1/sqrt(2)`` for two subflows sharing).
LIA_FACTOR = 1.0 / math.sqrt(2.0)

#: Congestion-window growth per RTT below ssthresh (classic doubling).
SLOW_START_GROWTH = 2.0

#: Growth per RTT above ssthresh.  Linux CUBIC's convex recovery is
#: much faster than Reno's one-segment-per-RTT; a geometric 1.25×/RTT
#: keeps the event count bounded and sits between the two (see
#: DESIGN.md §10 for the resulting error bounds).
CONGESTION_AVOIDANCE_GROWTH = 1.25

#: CUBIC response function ``W = k * (rtt / p^3)^(1/4)`` constant:
#: ``(C*(3+beta)/(4*(1-beta)))^(1/4)`` with Linux's C=0.4, beta=0.7
#: gives 1.054.  Multi-seed packet-engine means reproduce it within a
#: few percent across p in [0.003, 0.02] and rtt in [20 ms, 70 ms]
#: (see repro.flow.validate).
CUBIC_RESPONSE_CONSTANT = 1.054

#: Reno-family response ``W = k / sqrt(p)``.  Loss-event-driven AIMD
#: predicts k in [1.22 (per-packet Mathis), 1.63 (per-window events)];
#: the packet engine's multi-seed means sit at ~1.4.
RENO_RESPONSE_CONSTANT = 1.4

#: Congestion controls whose per-subflow loss response follows CUBIC;
#: everything else (reno, decoupled, coupled, olia) is Reno-family.
_CUBIC_CCS = frozenset({"cubic"})

#: Coupled controllers (aggregate no more aggressive than one TCP).
_COUPLED_CCS = frozenset({"coupled", "olia"})

#: Loss-equilibrium convergence constant, in expected loss events.
#: A transfer's first segments ride the slow-start overshoot near link
#: capacity; the response-function window only describes the long-run
#: average after a few loss/recovery epochs.  The effective cap decays
#: from the capacity term toward the loss limit as
#: ``exp(-segments_delivered * p / LOSS_CONVERGENCE_EVENTS)`` — i.e.
#: equilibrium after ~3 expected losses, matching the packet engine's
#: 1 MB-vs-4 MB throughput ratio on lossy paths.
LOSS_CONVERGENCE_EVENTS = 3.0

#: Average fill of the bottleneck DropTail buffer behind a
#: capacity-limited subflow, in queue capacities.  The packet sender's
#: window saws between overflow and recovery, and retransmission
#: epochs stretch the drain of whatever is queued, so the *effective*
#: committed backlog exceeds one queue capacity; calibrated against
#: packet-engine MPTCP straggler tails (see repro.flow.validate).
DRAIN_QUEUE_FILL = 1.5


@dataclass(frozen=True)
class FlowPathParams:
    """Static per-path inputs to the flow model (one transfer direction).

    ``wire_bytes_s`` is the raw serialization capacity of the
    direction the payload travels (trace-driven links contribute their
    mean rate), before header/loss discounts.
    """

    name: str
    wire_bytes_s: float
    rtt_s: float
    loss_rate: float
    #: DropTail buffer depth of the bottleneck link, in packets.
    queue_packets: int = 250


def path_flow_params(
    path_spec: PathSpec, direction: str, rng: RngStreams
) -> FlowPathParams:
    """Materialize one condition path for the flow model.

    Goes through :meth:`~repro.linkem.shells.LinkSpec.to_path_config`
    — the exact constructor the packet engine uses — so temporal
    jitter consumes the same ``jitter.{name}`` RNG draws and
    trace-driven links report the same synthesized mean rate.  A flow
    run at seed *s* therefore sees bit-identical effective link
    parameters to the packet run at seed *s*.
    """
    config = path_spec.to_link_spec().to_path_config(path_spec.name, rng)
    rate_mbps = (
        config.effective_down_mbps if direction == "down"
        else config.effective_up_mbps
    )
    return FlowPathParams(
        name=path_spec.name,
        wire_bytes_s=rate_mbps * 1e6 / 8.0,
        rtt_s=config.rtt_ms / 1000.0,
        loss_rate=config.loss_rate,
        queue_packets=config.queue_packets,
    )


def ge_stationary_loss(
    p_good_to_bad: float, p_bad_to_good: float,
    p_good: float, p_bad: float,
) -> float:
    """Stationary loss rate of a Gilbert–Elliott chain.

    The flow model cannot follow individual episodes, so a
    ``burst_loss`` fault contributes its long-run average loss for the
    duration of the episode.
    """
    denominator = p_good_to_bad + p_bad_to_good
    if denominator <= 0:
        return p_good
    pi_bad = p_good_to_bad / denominator
    return (1.0 - pi_bad) * p_good + pi_bad * p_bad


def loss_limited_bytes_s(
    mss_bytes: int, rtt_s: float, loss_rate: float, cc: str
) -> float:
    """Loss-limited sustainable rate of one subflow, bytes per second.

    Response-function form (average window per loss rate), with the
    constants calibrated against multi-seed packet-engine means —
    DESIGN.md §10 records the fit.  Coupled controllers (LIA/OLIA)
    additionally scale by :data:`LIA_FACTOR` so the aggregate stays no
    more aggressive than a single TCP.
    """
    if loss_rate <= 0.0 or rtt_s <= 0.0:
        return math.inf
    if cc in _CUBIC_CCS:
        window = CUBIC_RESPONSE_CONSTANT * (rtt_s / loss_rate**3) ** 0.25
    else:
        window = RENO_RESPONSE_CONSTANT / math.sqrt(loss_rate)
    rate = window * mss_bytes / rtt_s
    if cc in _COUPLED_CCS:
        rate *= LIA_FACTOR
    return rate


def loss_transient_factor(segments_delivered: float, loss_rate: float) -> float:
    """How far a subflow still is from loss equilibrium (1 → 0)."""
    if loss_rate <= 0.0:
        return 0.0
    return math.exp(
        -segments_delivered * loss_rate / LOSS_CONVERGENCE_EVENTS
    )


def steady_goodput_bytes_s(
    wire_bytes_s: float,
    rtt_s: float,
    loss_rate: float,
    config: TcpConfig,
    cc: str,
    segments_delivered: float = math.inf,
) -> float:
    """Sustainable goodput of one subflow, bytes per second.

    ``min(capacity, flow control, loss limit)`` with the capacity term
    discounted for header overhead and retransmissions, and the loss
    limit phased in over the transfer's first loss epochs (see
    :data:`LOSS_CONVERGENCE_EVENTS`); ``segments_delivered`` defaults
    to the fully converged long-run rate.
    """
    if wire_bytes_s <= 0.0:
        return 0.0
    mss = config.mss_bytes
    efficiency = mss / (mss + TCP_HEADER_BYTES)
    cap = wire_bytes_s * efficiency * (1.0 - loss_rate)
    if rtt_s > 0.0:
        cap = min(cap, config.receive_window_bytes / rtt_s)
    loss_limit = loss_limited_bytes_s(mss, rtt_s, loss_rate, cc)
    converged = min(cap, loss_limit)
    if converged >= cap:
        return max(0.0, cap)
    transient = loss_transient_factor(segments_delivered, loss_rate)
    return max(0.0, converged + (cap - converged) * transient)


def pipe_capacity_bytes(
    rate_bytes_s: float,
    rtt_s: float,
    loss_rate: float,
    config: TcpConfig,
    cc: str,
    queue_packets: int,
) -> float:
    """Maximum bytes one subflow's pipe can hold *committed* at once.

    MPTCP's min-RTT scheduler assigns a chunk to any subflow with
    window space, and a chunk, once assigned, stays on that subflow
    (no reinjection short of failure).  A subflow's steady commitment
    is whatever its window sustains: the loss response window if
    losses cap it first, the receive window if flow control does, and
    otherwise — on a capacity-limited path — the bandwidth-delay
    product plus the bottleneck DropTail buffer the sawing window
    keeps (over-)full, i.e. bufferbloat.  When the source drains, the
    slowest pipe drains alone and sets the transfer's completion
    time: the straggler tail visible in the paper's Figs. 9/10 and
    reproduced by the packet engine.

    A still-ramping window commits only itself; the engine bounds this
    pipe by the live congestion window (see
    :meth:`repro.flow.engine._Subflow.inflight_bytes`).
    """
    if rate_bytes_s <= 0.0 or rtt_s <= 0.0:
        return 0.0
    mss = config.mss_bytes
    packet_bytes = mss + TCP_HEADER_BYTES
    pipe = (
        rate_bytes_s * rtt_s
        + queue_packets * packet_bytes * DRAIN_QUEUE_FILL
    )
    pipe = min(pipe, float(config.receive_window_bytes))
    loss_limit = loss_limited_bytes_s(mss, rtt_s, loss_rate, cc)
    if math.isfinite(loss_limit):
        pipe = min(pipe, loss_limit * rtt_s)
    return pipe
