"""Tunable TCP parameters.

Defaults mirror the Ubuntu 13.10 / Linux 3.11 stack the paper measured
with (IW10, 200 ms minimum RTO, three duplicate ACKs for fast
retransmit).
"""

from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.core.packet import MSS_BYTES

__all__ = ["TcpConfig"]


@dataclass(frozen=True)
class TcpConfig:
    """Per-connection TCP knobs shared by senders and receivers."""

    mss_bytes: int = MSS_BYTES
    #: Initial congestion window in segments (Linux IW10).
    initial_cwnd_segments: int = 10
    #: Congestion window after an RTO (loss window).
    loss_cwnd_segments: int = 1
    #: Duplicate ACKs that trigger fast retransmit.
    dupack_threshold: int = 3
    #: RTO before any RTT sample exists (RFC 6298 says 1 s).
    initial_rto_s: float = 1.0
    #: Linux clamps the RTO at 200 ms minimum.
    min_rto_s: float = 0.2
    max_rto_s: float = 60.0
    #: Give up retransmitting a SYN after this many attempts.
    max_syn_retries: int = 6
    #: Give up on a data segment after this many RTO-driven retries.
    max_data_retries: int = 12
    #: Receive window advertised by each endpoint.  The default is
    #: large enough never to bind in the paper's experiments (Linux
    #: autotunes rmem into the megabytes); shrink it to study
    #: flow-control-limited transfers.
    receive_window_bytes: int = 4 * 1024 * 1024
    #: Acknowledge every 2nd data segment, with a timer flushing a
    #: pending ACK (RFC 1122 delayed ACKs).  Off by default because the
    #: Linux receiver effectively quick-ACKs during bulk transfers and
    #: slow start, which is the regime the paper measures; enable it to
    #: study the interaction (see the delack ablation bench).
    delayed_acks: bool = False
    #: Delayed-ACK flush timer (Linux uses 40 ms–200 ms adaptively).
    delayed_ack_timeout_s: float = 0.04
    #: Initial slow-start threshold in segments, or ``None`` for
    #: unbounded (a cold start).  Linux caches ssthresh per destination
    #: (the route metrics cache), so the paper's back-to-back
    #: measurement runs started warm — in congestion avoidance almost
    #: immediately.  Flow-level MPTCP experiments set this to model
    #: that; see DESIGN.md §4.
    initial_ssthresh_segments: "int | None" = None

    def __post_init__(self) -> None:
        if self.mss_bytes <= 0:
            raise ConfigurationError(f"mss_bytes must be positive: {self.mss_bytes}")
        if self.initial_cwnd_segments < 1:
            raise ConfigurationError(
                f"initial_cwnd_segments must be >= 1: {self.initial_cwnd_segments}"
            )
        if self.dupack_threshold < 1:
            raise ConfigurationError(
                f"dupack_threshold must be >= 1: {self.dupack_threshold}"
            )
        if self.min_rto_s <= 0 or self.min_rto_s > self.max_rto_s:
            raise ConfigurationError(
                f"invalid RTO bounds: [{self.min_rto_s}, {self.max_rto_s}]"
            )
        if self.initial_rto_s <= 0:
            raise ConfigurationError(
                f"initial_rto_s must be positive: {self.initial_rto_s}"
            )
        if self.receive_window_bytes < self.mss_bytes:
            raise ConfigurationError(
                "receive_window_bytes must hold at least one segment: "
                f"{self.receive_window_bytes}"
            )
        if self.delayed_ack_timeout_s <= 0:
            raise ConfigurationError(
                f"delayed_ack_timeout_s must be positive: "
                f"{self.delayed_ack_timeout_s}"
            )
        if (
            self.initial_ssthresh_segments is not None
            and self.initial_ssthresh_segments < 2
        ):
            raise ConfigurationError(
                "initial_ssthresh_segments must be >= 2 when set: "
                f"{self.initial_ssthresh_segments}"
            )
