"""The transmit engine driving one (sub)flow's data direction.

Implements the loss recovery of the Linux stack the paper measured:
cumulative ACKs with SACK blocks, duplicate-ACK-triggered fast
retransmit, SACK-based hole retransmission during recovery (one
retransmission per hole per recovery epoch, paced by the pipe), and an
RFC 6298 retransmission timer with exponential backoff.  RTT samples
come from the receiver's timestamp echo (RFC 7323 style), so they stay
clean even during recovery.  Window growth is delegated to a pluggable
:class:`~repro.tcp.cc.base.CongestionControl`.
"""

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, List

from repro.core.events import EventLoop, Timer
from repro.core.packet import Packet, PacketFlags
from repro.tcp.cc.base import CongestionControl
from repro.tcp.config import TcpConfig
from repro.tcp.rtt import RttEstimator
from repro.tcp.source import Chunk

__all__ = ["SubflowSender", "SenderStats"]


@dataclass(slots=True)
class _SegmentRecord:
    seq: int
    length: int
    data_seq: int
    sent_at: float
    retransmitted: bool = False
    sacked: bool = False
    rxt_epoch: int = -1


@dataclass(slots=True)
class SenderStats:
    """Counters exposed for analysis and tests."""

    segments_sent: int = 0
    bytes_sent: int = 0
    retransmits: int = 0
    fast_retransmits: int = 0
    timeouts: int = 0


class SubflowSender:
    """Reliable, congestion-controlled byte transmission on one subflow."""

    __slots__ = (
        "loop", "config", "cc", "rtt", "_transmit", "flow_id", "subflow_id",
        "snd_una", "snd_nxt", "_outstanding", "_pipe", "_dupacks",
        "_in_recovery", "_recovery_point", "_recovery_epoch",
        "_max_sacked_end", "_head_retries", "_dead", "peer_window_bytes",
        "stats", "_rto_timer", "on_data_acked", "on_window_open", "on_dead",
        "on_rto_event", "obs", "obs_path",
    )

    def __init__(
        self,
        loop: EventLoop,
        config: TcpConfig,
        cc: CongestionControl,
        rtt: RttEstimator,
        transmit: Callable[[Packet], None],
        flow_id: int,
        subflow_id: int,
    ) -> None:
        self.loop = loop
        self.config = config
        self.cc = cc
        self.rtt = rtt
        self._transmit = transmit
        self.flow_id = flow_id
        self.subflow_id = subflow_id

        self.snd_una = 0
        self.snd_nxt = 0
        self._outstanding: "OrderedDict[int, _SegmentRecord]" = OrderedDict()
        self._pipe = 0  # outstanding, un-SACKed segments
        self._dupacks = 0
        self._in_recovery = False
        self._recovery_point = 0
        self._recovery_epoch = 0
        self._max_sacked_end = 0
        self._head_retries = 0
        self._dead = False
        #: Peer's advertised receive window (flow control); starts at
        #: the sender's own configured window until the first ACK.
        self.peer_window_bytes = config.receive_window_bytes
        self.stats = SenderStats()
        #: Optional :class:`~repro.obs.trace.TraceRecorder`; every hot
        #: path only pays an is-None test when tracing is disabled.
        self.obs = None
        self.obs_path = ""

        self._rto_timer = Timer(loop, self._on_rto)

        # Connection-level callbacks (wired by the Subflow).
        self.on_data_acked: Callable[[List[Chunk]], None] = lambda chunks: None
        self.on_window_open: Callable[[], None] = lambda: None
        self.on_dead: Callable[[], None] = lambda: None
        self.on_rto_event: Callable[[], None] = lambda: None

        cc.srtt_getter = lambda: self.rtt.smoothed_rtt
        if hasattr(cc, "now_getter"):
            cc.now_getter = lambda: self.loop.now

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def inflight_segments(self) -> int:
        """Un-SACKed segments in flight (the SACK "pipe")."""
        return self._pipe

    @property
    def done(self) -> bool:
        """True when every byte handed to this sender has been ACKed."""
        return not self._outstanding and self.snd_una == self.snd_nxt

    @property
    def dead(self) -> bool:
        return self._dead

    @property
    def in_recovery(self) -> bool:
        return self._in_recovery

    def window_space(self) -> int:
        """Whole segments that fit in min(cwnd, peer receive window)."""
        if self._dead:
            return 0
        cwnd_space = int(self.cc.cwnd) - self._pipe
        flight_bytes = self.snd_nxt - self.snd_una
        rwnd_space = (
            self.peer_window_bytes - flight_bytes
        ) // self.config.mss_bytes
        return max(0, min(cwnd_space, rwnd_space))

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def send_chunk(self, chunk: Chunk) -> None:
        """Assign subflow sequence space to ``chunk`` and transmit it."""
        data_seq, length = chunk
        record = _SegmentRecord(
            seq=self.snd_nxt, length=length, data_seq=data_seq, sent_at=self.loop.now
        )
        self._outstanding[record.seq] = record
        self._pipe += 1
        self.snd_nxt += length
        self._emit(record)
        if not self._rto_timer.running:
            self._rto_timer.start(self.rtt.rto)

    def _emit(self, record: _SegmentRecord, retransmission: bool = False) -> None:
        packet = Packet(
            flow_id=self.flow_id,
            subflow_id=self.subflow_id,
            seq=record.seq,
            ack=0,
            flags=PacketFlags.ACK,
            payload_bytes=record.length,
            data_seq=record.data_seq,
            retransmitted=retransmission,
            sent_at=self.loop.now,
        )
        record.sent_at = self.loop.now
        record.retransmitted = record.retransmitted or retransmission
        self.stats.segments_sent += 1
        self.stats.bytes_sent += record.length
        if retransmission:
            self.stats.retransmits += 1
        if self.obs is not None:
            # Adjacent to the stats increments so trace-derived counts
            # reconcile exactly with SenderStats (see repro.obs.summary).
            self.obs.emit(
                "send", self.loop.now, path=self.obs_path,
                flow_id=self.flow_id, subflow_id=self.subflow_id,
                seq=record.seq, length=record.length,
                data_seq=record.data_seq, rxt=retransmission,
            )
        self._transmit(packet)

    def _emit_cwnd(self, reason: str) -> None:
        """Trace a cwnd/ssthresh change (caller checked ``obs``)."""
        ssthresh = self.cc.ssthresh
        self.obs.emit(
            "cwnd", self.loop.now, path=self.obs_path,
            flow_id=self.flow_id, subflow_id=self.subflow_id,
            cwnd=self.cc.cwnd,
            ssthresh=None if ssthresh == math.inf else ssthresh,
            reason=reason,
        )

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def on_ack_packet(self, packet: Packet) -> None:
        """Process a (possibly SACK-bearing) acknowledgment."""
        if self._dead:
            return
        if packet.rwnd is not None:
            self.peer_window_bytes = packet.rwnd
        if packet.echo_ts is not None and packet.echo_ts >= 0:
            sample = self.loop.now - packet.echo_ts
            self.rtt.add_sample(sample)
            self.cc.on_rtt_sample(sample)
        sack_advanced = self._apply_sack(packet)
        ack = packet.ack
        if ack > self.snd_una:
            self._on_new_ack(ack)
        elif ack == self.snd_una and self._outstanding:
            self._on_dup_ack()
        if self._in_recovery and sack_advanced:
            self._sack_retransmit()

    def _apply_sack(self, packet: Packet) -> bool:
        if not packet.sack:
            return False
        advanced = False
        outstanding = self._outstanding
        pipe = self._pipe
        max_sacked = self._max_sacked_end
        for start, end in packet.sack:
            if end > max_sacked:
                max_sacked = end
            for seq, record in outstanding.items():
                if record.sacked:
                    continue
                if seq >= start and seq + record.length <= end:
                    record.sacked = True
                    pipe -= 1
                    advanced = True
                elif seq >= end:
                    break
        self._pipe = pipe
        self._max_sacked_end = max_sacked
        return advanced

    def _on_new_ack(self, ack: int) -> None:
        acked_chunks: List[Chunk] = []
        acked_segments = 0
        outstanding = self._outstanding
        while outstanding:
            seq, record = next(iter(outstanding.items()))
            if seq + record.length > ack:
                break
            outstanding.popitem(last=False)
            if not record.sacked:
                self._pipe -= 1
            acked_chunks.append((record.data_seq, record.length))
            acked_segments += 1
        self.snd_una = ack
        self._dupacks = 0
        self._head_retries = 0

        if self._in_recovery:
            if ack >= self._recovery_point:
                self._in_recovery = False
                self.cc.cwnd = max(self.cc.ssthresh, 2.0)
                if self.obs is not None:
                    self._emit_cwnd("recovery_exit")
            else:
                # Partial ACK: the next hole is also lost (NewReno) —
                # SACK-driven retransmission handles it when blocks are
                # present; retransmit the head as the fallback.
                self._retransmit_head()
                self._sack_retransmit()
        else:
            self.cc.on_ack(float(acked_segments))
            if self.obs is not None:
                self._emit_cwnd("ack")
            if self._outstanding and self._max_sacked_end > self.snd_una:
                # Holes left behind by an RTO (we are no longer in fast
                # recovery): keep repairing them, paced by the window.
                self._retransmit_head()
                self._sack_retransmit()

        if self._outstanding:
            self._rto_timer.start(self.rtt.rto)
        else:
            self._rto_timer.stop()

        if acked_chunks:
            self.on_data_acked(acked_chunks)
        self.on_window_open()

    def _on_dup_ack(self) -> None:
        self._dupacks += 1
        if self.obs is not None:
            self.obs.emit(
                "dupack", self.loop.now, path=self.obs_path,
                flow_id=self.flow_id, subflow_id=self.subflow_id,
                count=self._dupacks,
            )
        if self._dupacks == self.config.dupack_threshold and not self._in_recovery:
            self._enter_recovery()
        elif self._in_recovery:
            self.on_window_open()

    def _enter_recovery(self) -> None:
        self._in_recovery = True
        self._recovery_point = self.snd_nxt
        self._recovery_epoch += 1
        # RFC 5681 FlightSize counts SACKed-but-unacked data too.
        self.cc.on_enter_recovery(float(len(self._outstanding)))
        self.stats.fast_retransmits += 1
        if self.obs is not None:
            self.obs.emit(
                "fast_retransmit", self.loop.now, path=self.obs_path,
                flow_id=self.flow_id, subflow_id=self.subflow_id,
                recovery_point=self._recovery_point,
            )
            self._emit_cwnd("fast_retransmit")
        self._retransmit_head()
        self._sack_retransmit()

    def _retransmission_allowed(self, record: _SegmentRecord) -> bool:
        """Whether ``record`` may be (re)retransmitted right now.

        A segment is retransmitted at most once per recovery epoch —
        unless the retransmission itself has evidently been lost (no
        ACK/SACK for a full RTO), which Linux detects similarly.
        """
        if record.sacked:
            return False
        if record.rxt_epoch < self._recovery_epoch:
            return True
        return (self.loop.now - record.sent_at) > self.rtt.rto

    def _retransmit_head(self) -> None:
        for record in self._outstanding.values():
            if record.sacked:
                continue
            if self._retransmission_allowed(record):
                record.rxt_epoch = self._recovery_epoch
                self._emit(record, retransmission=True)
                self._rto_timer.start(self.rtt.rto)
            return

    def _sack_retransmit(self) -> None:
        """Retransmit SACK-inferred holes, bounded by the window."""
        budget = self.window_space()
        if budget <= 0:
            return
        lost_boundary = self._max_sacked_end - (
            self.config.dupack_threshold * self.config.mss_bytes
        )
        for record in self._outstanding.values():
            if budget <= 0:
                break
            if record.seq >= lost_boundary:
                break
            if not self._retransmission_allowed(record):
                continue
            record.rxt_epoch = self._recovery_epoch
            self._emit(record, retransmission=True)
            budget -= 1
        self._rto_timer.start(self.rtt.rto)

    # ------------------------------------------------------------------
    # Timeout handling
    # ------------------------------------------------------------------
    def _on_rto(self) -> None:
        if self._dead or not self._outstanding:
            return
        self.stats.timeouts += 1
        self._head_retries += 1
        if self.obs is not None:
            # Before the retries-exhausted bail-out so every timeout
            # counted in SenderStats also appears in the trace.
            self.obs.emit(
                "rto", self.loop.now, path=self.obs_path,
                flow_id=self.flow_id, subflow_id=self.subflow_id,
                retries=self._head_retries, rto_s=self.rtt.rto,
            )
        if self._head_retries > self.config.max_data_retries:
            self._die()
            return
        self._in_recovery = False
        self._dupacks = 0
        self._recovery_epoch += 1
        self.cc.on_timeout(float(len(self._outstanding)))
        self.rtt.back_off()
        if self.obs is not None:
            self._emit_cwnd("rto")
        self._retransmit_head()
        self.on_rto_event()

    def _die(self) -> None:
        self._dead = True
        self._rto_timer.stop()
        self.on_dead()

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def fail(self) -> List[Chunk]:
        """Stop this sender and return the data chunks it never delivered.

        Called when the underlying interface is administratively
        removed; the connection reinjects the returned chunks onto the
        surviving subflows.
        """
        self._dead = True
        self._rto_timer.stop()
        # SACKed chunks are included too: a subflow-level SACK only
        # means the far receiver buffered them out of order; if they
        # never became in-order there, the connection never saw them.
        # The connection filters out anything already reassembled.
        chunks = [(r.data_seq, r.length) for r in self._outstanding.values()]
        self._outstanding.clear()
        self._pipe = 0
        return chunks

    def __repr__(self) -> str:
        return (
            f"SubflowSender(flow={self.flow_id}.{self.subflow_id}, "
            f"una={self.snd_una}, nxt={self.snd_nxt}, "
            f"pipe={self._pipe}, cwnd={self.cc.cwnd:.1f})"
        )
