"""Single-path TCP: congestion control, sender/receiver engines, flows.

The same machinery backs MPTCP subflows (:mod:`repro.mptcp`); a plain
TCP connection is the one-subflow special case.
"""

from repro.tcp.config import TcpConfig
from repro.tcp.rtt import RttEstimator
from repro.tcp.source import BulkSource
from repro.tcp.subflow import Subflow, SubflowState
from repro.tcp.connection import TcpConnection, ConnectionStats
from repro.tcp.cc import CongestionControl, Reno, Cubic, LiaCoupling, LiaSubflowCc

__all__ = [
    "TcpConfig",
    "RttEstimator",
    "BulkSource",
    "Subflow",
    "SubflowState",
    "TcpConnection",
    "ConnectionStats",
    "CongestionControl",
    "Reno",
    "Cubic",
    "LiaCoupling",
    "LiaSubflowCc",
]
