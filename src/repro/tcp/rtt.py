"""RFC 6298 round-trip-time estimation and RTO computation."""

from typing import Optional

from repro.tcp.config import TcpConfig

__all__ = ["RttEstimator"]


class RttEstimator:
    """Maintains SRTT / RTTVAR and derives the retransmission timeout.

    Follows RFC 6298 with Linux-style clamping of the minimum RTO.
    Retransmitted segments must not be sampled (Karn's algorithm) —
    enforcing that is the sender's job; this class just takes clean
    samples.
    """

    ALPHA = 1.0 / 8.0
    BETA = 1.0 / 4.0
    K = 4.0

    def __init__(self, config: TcpConfig):
        self._config = config
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self._rto = config.initial_rto_s
        self._backoff = 1.0
        self.samples = 0

    @property
    def rto(self) -> float:
        """Current retransmission timeout, including exponential backoff."""
        rto = self._rto * self._backoff
        return min(max(rto, self._config.min_rto_s), self._config.max_rto_s)

    @property
    def smoothed_rtt(self) -> float:
        """Best current RTT estimate; the initial RTO before any sample."""
        return self.srtt if self.srtt is not None else self._config.initial_rto_s

    def add_sample(self, rtt: float) -> None:
        """Incorporate a clean (non-retransmitted) RTT measurement."""
        if rtt < 0:
            return
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            assert self.rttvar is not None
            self.rttvar = (1 - self.BETA) * self.rttvar + self.BETA * abs(self.srtt - rtt)
            self.srtt = (1 - self.ALPHA) * self.srtt + self.ALPHA * rtt
        self._rto = self.srtt + max(self.K * (self.rttvar or 0.0), 0.001)
        self._backoff = 1.0
        self.samples += 1

    def back_off(self) -> None:
        """Double the RTO after a retransmission timeout."""
        self._backoff = min(self._backoff * 2.0, 2.0 ** 10)

    def __repr__(self) -> str:
        srtt = f"{self.srtt * 1000:.1f}ms" if self.srtt is not None else "unset"
        return f"RttEstimator(srtt={srtt}, rto={self.rto * 1000:.1f}ms)"
