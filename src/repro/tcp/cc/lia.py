"""Coupled MPTCP congestion control: the Linked Increases Algorithm.

RFC 6356 couples the congestion-avoidance *increase* across the
subflows of one MPTCP connection so the aggregate is fair to a
single-path TCP at the shared bottleneck.  Per ACK on subflow *i*, the
window increase (in segments, per acked segment) is::

    min( alpha / cwnd_total ,  1 / cwnd_i )

with::

    alpha = cwnd_total * max_i(cwnd_i / rtt_i^2) / (sum_i cwnd_i / rtt_i)^2

Slow start and the multiplicative decrease stay per-subflow, exactly as
in the Linux implementation the paper measured.
"""

from typing import List

from repro.tcp.cc.base import CongestionControl
from repro.tcp.config import TcpConfig

__all__ = ["LiaCoupling", "LiaSubflowCc"]


class LiaCoupling:
    """Shared state linking the subflow controllers of one connection."""

    def __init__(self) -> None:
        self._members: List["LiaSubflowCc"] = []

    def register(self, member: "LiaSubflowCc") -> None:
        self._members.append(member)

    def unregister(self, member: "LiaSubflowCc") -> None:
        if member in self._members:
            self._members.remove(member)

    @property
    def members(self) -> List["LiaSubflowCc"]:
        return list(self._members)

    def total_cwnd(self) -> float:
        return sum(member.cwnd for member in self._members)

    def alpha(self) -> float:
        """RFC 6356 aggressiveness factor."""
        total = self.total_cwnd()
        if total <= 0:
            return 1.0
        best = 0.0
        denom = 0.0
        for member in self._members:
            rtt = max(member.srtt_getter(), 1e-3)
            best = max(best, member.cwnd / (rtt * rtt))
            denom += member.cwnd / rtt
        if denom <= 0:
            return 1.0
        return total * best / (denom * denom)


class LiaSubflowCc(CongestionControl):
    """Per-subflow controller participating in a :class:`LiaCoupling`."""

    def __init__(self, config: TcpConfig, coupling: LiaCoupling):
        super().__init__(config)
        self.coupling = coupling
        coupling.register(self)

    def detach(self) -> None:
        """Remove this subflow from the coupled increase computation."""
        self.coupling.unregister(self)

    def on_ack(self, newly_acked_segments: float) -> None:
        remainder = self.slow_start_increase(newly_acked_segments)
        if remainder <= 0 or self.cwnd <= 0:
            return
        total = self.coupling.total_cwnd()
        if total <= 0:
            total = self.cwnd
        coupled = self.coupling.alpha() / total
        uncoupled = 1.0 / self.cwnd
        self.cwnd += min(coupled, uncoupled) * remainder
