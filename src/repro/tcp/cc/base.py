"""Congestion-control interface.

The sender engine owns all loss detection; a congestion controller
only answers "how big is the window now?".  Windows are floats measured
in segments — the sender floors when deciding whether another segment
fits.
"""

import math
from abc import ABC, abstractmethod

from repro.tcp.config import TcpConfig

__all__ = ["CongestionControl"]


class CongestionControl(ABC):
    """Window-evolution policy for one (sub)flow."""

    def __init__(self, config: TcpConfig):
        self.config = config
        self.cwnd: float = float(config.initial_cwnd_segments)
        self.ssthresh: float = (
            float(config.initial_ssthresh_segments)
            if config.initial_ssthresh_segments is not None
            else math.inf
        )
        #: Set by the sender so controllers can read the subflow's RTT
        #: (coupled algorithms need it).
        self.srtt_getter = lambda: 0.1

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    @abstractmethod
    def on_ack(self, newly_acked_segments: float) -> None:
        """Grow the window after a cumulative ACK covering new data."""

    def on_rtt_sample(self, rtt: float) -> None:
        """Observe a raw RTT sample (HyStart-style algorithms use this)."""

    def on_enter_recovery(self, inflight_segments: float) -> None:
        """Multiplicative decrease at the start of fast recovery."""
        self.ssthresh = max(inflight_segments / 2.0, 2.0)
        self.cwnd = self.ssthresh

    def on_timeout(self, inflight_segments: float) -> None:
        """Collapse the window after an RTO."""
        self.ssthresh = max(inflight_segments / 2.0, 2.0)
        self.cwnd = float(self.config.loss_cwnd_segments)

    def slow_start_increase(self, newly_acked_segments: float) -> float:
        """Shared slow-start growth: one segment per segment ACKed.

        Returns any ACK credit left over after cwnd reaches ssthresh so
        congestion-avoidance growth can consume the remainder.
        """
        if not self.in_slow_start:
            return newly_acked_segments
        room = self.ssthresh - self.cwnd
        used = min(newly_acked_segments, room)
        self.cwnd += used
        return newly_acked_segments - used

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(cwnd={self.cwnd:.2f}, "
            f"ssthresh={self.ssthresh:.2f})"
        )
