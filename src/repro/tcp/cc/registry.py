"""The single congestion-control registry.

Historically single-path TCP resolved its algorithm through
``repro.scenario.CC_FACTORIES`` (``reno``/``cubic``) while the MPTCP
variants (``coupled``/LIA, ``olia``, per-subflow ``decoupled`` Reno)
routed through string checks inside :class:`repro.mptcp.connection.
MptcpOptions` — two registries, two error messages, and no single
place for spec validation to ask "is this a known algorithm?".

This module is that place.  Every algorithm is a :class:`CcEntry`
declaring the scopes it is valid in:

``single``
    Usable by a single-path TCP connection; ``factory`` builds the
    per-connection controller.
``mptcp``
    Usable as an MPTCP connection-level congestion-control mode
    (coupled LIA/OLIA or a per-subflow decoupled algorithm).

Unknown names raise :class:`~repro.core.errors.ConfigurationError`
with one uniform message via :func:`unknown_cc_error`, used by
``Scenario.tcp``, ``MptcpOptions`` and the workload spec validators.
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.tcp.cc.base import CongestionControl
from repro.tcp.cc.cubic import Cubic
from repro.tcp.cc.reno import Reno
from repro.tcp.config import TcpConfig

__all__ = [
    "CC_REGISTRY",
    "CcEntry",
    "cc_entry",
    "cc_names",
    "register_cc",
    "single_path_factory",
    "unknown_cc_error",
    "validate_cc",
]

CcFactory = Callable[[TcpConfig], CongestionControl]


@dataclass(frozen=True)
class CcEntry:
    """One registered congestion-control algorithm."""

    name: str
    #: Scopes the name is valid in ("single", "mptcp").
    scopes: Tuple[str, ...]
    #: Per-connection controller factory (single-path scope only).
    factory: Optional[CcFactory] = None
    #: Alternative spellings resolving to this entry (e.g. ``lia`` for
    #: the paper's "coupled" congestion control).
    aliases: Tuple[str, ...] = field(default=())


CC_REGISTRY: Dict[str, CcEntry] = {}
_ALIASES: Dict[str, str] = {}


def register_cc(entry: CcEntry) -> CcEntry:
    """Add ``entry`` (and its aliases) to the registry."""
    if entry.name in CC_REGISTRY:
        raise ConfigurationError(
            f"congestion control {entry.name!r} already registered"
        )
    CC_REGISTRY[entry.name] = entry
    for alias in entry.aliases:
        _ALIASES[alias] = entry.name
    return entry


register_cc(CcEntry(name="reno", scopes=("single",), factory=Reno))
register_cc(CcEntry(name="cubic", scopes=("single", "mptcp"), factory=Cubic))
#: Coupled LIA (RFC 6356) — the paper's "coupled" MPTCP mode.
register_cc(CcEntry(name="coupled", scopes=("mptcp",), aliases=("lia",)))
#: Per-subflow Reno (paper footnote 5) — the "decoupled" MPTCP mode.
register_cc(CcEntry(name="decoupled", scopes=("mptcp",)))
#: Opportunistic LIA (Khalili et al., CoNEXT'12).
register_cc(CcEntry(name="olia", scopes=("mptcp",)))


def cc_names(scope: Optional[str] = None) -> Tuple[str, ...]:
    """Registered canonical names, optionally restricted to a scope."""
    names = [
        name for name, entry in CC_REGISTRY.items()
        if scope is None or scope in entry.scopes
    ]
    return tuple(sorted(names))


def unknown_cc_error(name: object, scope: Optional[str] = None) -> ConfigurationError:
    """The one "unknown cc" error every layer raises."""
    return ConfigurationError(
        f"unknown congestion control {name!r}; have {list(cc_names(scope))}"
    )


def cc_entry(name: str, scope: Optional[str] = None) -> CcEntry:
    """Resolve a (possibly aliased) name; raise :func:`unknown_cc_error`."""
    canonical = _ALIASES.get(name, name)
    entry = CC_REGISTRY.get(canonical)
    if entry is None or (scope is not None and scope not in entry.scopes):
        raise unknown_cc_error(name, scope)
    return entry


def validate_cc(name: str, scope: str) -> str:
    """Return the canonical name for ``name`` in ``scope`` or raise."""
    return cc_entry(name, scope).name


def single_path_factory(name: str) -> CcFactory:
    """The controller factory for a single-path TCP algorithm."""
    entry = cc_entry(name, "single")
    assert entry.factory is not None
    return entry.factory
