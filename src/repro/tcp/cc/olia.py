"""OLIA — Opportunistic Linked Increases Algorithm (extension).

Khalili et al. ("MPTCP is not Pareto-optimal", CoNEXT'12 — reference
[10] of the paper) proposed OLIA to fix LIA's tendency to keep traffic
on congested paths.  The paper cites it as the basis of coupled
congestion control; we provide it as an extension so ablation benches
can compare LIA vs OLIA vs decoupled Reno.

Per ACK on subflow *i* the congestion-avoidance increase is::

    cwnd_i/rtt_i^2 / (sum_j cwnd_j/rtt_j)^2  +  epsilon_i / cwnd_i

where ``epsilon_i`` shifts traffic toward the *best* paths (those with
the highest estimated delivery rate since the last loss).
"""

from typing import List

from repro.tcp.cc.base import CongestionControl
from repro.tcp.config import TcpConfig

__all__ = ["OliaCoupling", "OliaSubflowCc"]


class OliaCoupling:
    """Shared OLIA state for one MPTCP connection."""

    def __init__(self) -> None:
        self._members: List["OliaSubflowCc"] = []

    def register(self, member: "OliaSubflowCc") -> None:
        self._members.append(member)

    def unregister(self, member: "OliaSubflowCc") -> None:
        if member in self._members:
            self._members.remove(member)

    @property
    def members(self) -> List["OliaSubflowCc"]:
        return list(self._members)

    def rtt_weighted_sum(self) -> float:
        return sum(
            member.cwnd / max(member.srtt_getter(), 1e-3) for member in self._members
        )

    def best_paths(self) -> List["OliaSubflowCc"]:
        """Paths with the highest bytes-delivered-since-loss / rtt^2."""
        if not self._members:
            return []
        scores = [
            (member.bytes_since_loss / max(member.srtt_getter(), 1e-3) ** 2, member)
            for member in self._members
        ]
        best_score = max(score for score, _ in scores)
        return [member for score, member in scores if score >= best_score * 0.999]

    def max_cwnd_paths(self) -> List["OliaSubflowCc"]:
        if not self._members:
            return []
        best = max(member.cwnd for member in self._members)
        return [member for member in self._members if member.cwnd >= best * 0.999]


class OliaSubflowCc(CongestionControl):
    """Per-subflow OLIA controller."""

    def __init__(self, config: TcpConfig, coupling: OliaCoupling):
        super().__init__(config)
        self.coupling = coupling
        self.bytes_since_loss = 0.0
        coupling.register(self)

    def detach(self) -> None:
        self.coupling.unregister(self)

    def _epsilon(self) -> float:
        members = self.coupling.members
        count = len(members)
        if count <= 1:
            return 0.0
        best = self.coupling.best_paths()
        max_paths = self.coupling.max_cwnd_paths()
        collected = [m for m in best if m not in max_paths]
        if collected:
            if self in collected:
                return 1.0 / (len(collected) * count)
            if self in max_paths:
                return -1.0 / (len(max_paths) * count)
        return 0.0

    def on_ack(self, newly_acked_segments: float) -> None:
        self.bytes_since_loss += newly_acked_segments * self.config.mss_bytes
        remainder = self.slow_start_increase(newly_acked_segments)
        if remainder <= 0 or self.cwnd <= 0:
            return
        rtt = max(self.srtt_getter(), 1e-3)
        denom = self.coupling.rtt_weighted_sum()
        if denom <= 0:
            denom = self.cwnd / rtt
        base = (self.cwnd / (rtt * rtt)) / (denom * denom)
        increase = base * rtt * rtt + self._epsilon() / self.cwnd
        self.cwnd += max(increase, 0.0) * remainder

    def on_enter_recovery(self, inflight_segments: float) -> None:
        super().on_enter_recovery(inflight_segments)
        self.bytes_since_loss = 0.0

    def on_timeout(self, inflight_segments: float) -> None:
        super().on_timeout(inflight_segments)
        self.bytes_since_loss = 0.0
