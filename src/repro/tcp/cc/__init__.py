"""Congestion-control algorithms.

* :class:`Reno` — classic slow start + AIMD; also the per-subflow
  algorithm of "decoupled" MPTCP in the paper (footnote 5: "the
  decoupled congestion control uses TCP Reno for each subflow").
* :class:`Cubic` — Linux's default for single-path TCP.
* :class:`LiaCoupling` / :class:`LiaSubflowCc` — the coupled Linked
  Increases Algorithm (RFC 6356) used by "coupled" MPTCP.
* :class:`OliaCoupling` — the opportunistic LIA variant (Khalili et
  al., CoNEXT'12), provided as an extension.
"""

from repro.tcp.cc.base import CongestionControl
from repro.tcp.cc.reno import Reno
from repro.tcp.cc.cubic import Cubic
from repro.tcp.cc.lia import LiaCoupling, LiaSubflowCc
from repro.tcp.cc.olia import OliaCoupling, OliaSubflowCc
from repro.tcp.cc.registry import (
    CC_REGISTRY,
    CcEntry,
    cc_entry,
    cc_names,
    register_cc,
    single_path_factory,
    unknown_cc_error,
    validate_cc,
)

__all__ = [
    "CongestionControl",
    "Reno",
    "Cubic",
    "LiaCoupling",
    "LiaSubflowCc",
    "OliaCoupling",
    "OliaSubflowCc",
    "CC_REGISTRY",
    "CcEntry",
    "cc_entry",
    "cc_names",
    "register_cc",
    "single_path_factory",
    "unknown_cc_error",
    "validate_cc",
]
