"""TCP Reno (NewReno-style window evolution)."""

from repro.tcp.cc.base import CongestionControl

__all__ = ["Reno"]


class Reno(CongestionControl):
    """Slow start then AIMD: +1 segment per RTT in congestion avoidance."""

    def on_ack(self, newly_acked_segments: float) -> None:
        remainder = self.slow_start_increase(newly_acked_segments)
        if remainder > 0 and self.cwnd > 0:
            self.cwnd += remainder / self.cwnd
