"""CUBIC congestion control (Ha, Rhee, Xu), as in Linux.

The window grows along a cubic curve anchored at the window size before
the last congestion event, with a TCP-friendly lower bound.  The sender
sets :attr:`now_getter` so the controller can read simulated time.
"""


from repro.tcp.cc.base import CongestionControl
from repro.tcp.config import TcpConfig

__all__ = ["Cubic"]


class Cubic(CongestionControl):
    """CUBIC with beta = 0.7 and C = 0.4 (Linux defaults)."""

    C = 0.4
    BETA = 0.7

    #: HyStart: don't exit slow start below this window.
    HYSTART_MIN_CWND = 16.0

    def __init__(self, config: TcpConfig):
        super().__init__(config)
        self.w_max = 0.0
        self._k = 0.0
        self._epoch_start: float = -1.0
        self._tcp_friendly_cwnd = 0.0
        self._min_rtt = float("inf")
        self._delay_min = float("inf")
        self._round_end = -1.0
        self._round_min = float("inf")
        self._round_samples = 0
        #: Injected by the sender; returns simulated seconds.
        self.now_getter = lambda: 0.0

    def on_rtt_sample(self, rtt: float) -> None:
        """HyStart delay-based slow-start exit (Linux default).

        Compares each ACK round's *minimum* RTT against the smallest
        round minimum seen so far; a persistent rise means the queue is
        filling and slow start exits before the overshoot losses a
        deep-buffered link would otherwise cause.  Using round minima
        (as Linux does) keeps the initial burst's self-queueing from
        triggering a false exit.
        """
        self._min_rtt = min(self._min_rtt, rtt)
        if not self.in_slow_start or self.cwnd < self.HYSTART_MIN_CWND:
            return
        now = self.now_getter()
        if now >= self._round_end:
            if self._round_samples >= 8 and self._delay_min < float("inf"):
                eta = min(max(self._delay_min / 8.0, 0.004), 0.016)
                if self._round_min >= self._delay_min + eta:
                    self.ssthresh = self.cwnd
                    self.w_max = self.cwnd
            if self._round_min < float("inf"):
                self._delay_min = min(self._delay_min, self._round_min)
            self._round_end = now + max(self.srtt_getter(), 1e-3)
            self._round_min = float("inf")
            self._round_samples = 0
        self._round_samples += 1
        self._round_min = min(self._round_min, rtt)

    def _begin_epoch(self) -> None:
        self._epoch_start = self.now_getter()
        if self.cwnd < self.w_max:
            self._k = ((self.w_max - self.cwnd) / self.C) ** (1.0 / 3.0)
        else:
            self._k = 0.0
            self.w_max = self.cwnd
        self._tcp_friendly_cwnd = self.cwnd

    def on_ack(self, newly_acked_segments: float) -> None:
        remainder = self.slow_start_increase(newly_acked_segments)
        if remainder <= 0:
            return
        if self._epoch_start < 0:
            self._begin_epoch()
        t = self.now_getter() - self._epoch_start
        rtt = max(self.srtt_getter(), 1e-3)
        target = self.C * (t + rtt - self._k) ** 3 + self.w_max
        # TCP-friendly region: emulate Reno's average rate.
        self._tcp_friendly_cwnd += (
            3.0 * (1.0 - self.BETA) / (1.0 + self.BETA) * remainder / max(self.cwnd, 1.0)
        )
        target = max(target, self._tcp_friendly_cwnd)
        if target > self.cwnd:
            self.cwnd += (target - self.cwnd) / max(self.cwnd, 1.0) * remainder
        else:
            self.cwnd += 0.01 * remainder / max(self.cwnd, 1.0)

    def on_enter_recovery(self, inflight_segments: float) -> None:
        self.w_max = self.cwnd
        self.ssthresh = max(self.cwnd * self.BETA, 2.0)
        self.cwnd = self.ssthresh
        self._epoch_start = -1.0

    def on_timeout(self, inflight_segments: float) -> None:
        self.w_max = self.cwnd
        super().on_timeout(inflight_segments)
        self._epoch_start = -1.0

    def __repr__(self) -> str:
        return (
            f"Cubic(cwnd={self.cwnd:.2f}, ssthresh={self.ssthresh:.2f}, "
            f"w_max={self.w_max:.2f}, k={self._k:.3f})"
        )
