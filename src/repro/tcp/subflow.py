"""One TCP subflow: handshake, data transfer, and teardown on a path.

A plain TCP connection is a single subflow; an MPTCP connection owns
several.  The client always initiates the handshake (as in the paper's
setup, where the multi-homed laptop connects to the single-homed MIT
server).  ``direction`` selects which side sources the data:
``"down"`` (server to client — the paper's default presentation) or
``"up"``.
"""

import enum
from typing import Callable, List, Optional

from repro.core.events import EventLoop, Timer
from repro.core.packet import Packet, PacketFlags
from repro.net.fabric import AttachedPath
from repro.tcp.cc.base import CongestionControl
from repro.tcp.config import TcpConfig
from repro.tcp.receiver import SubflowReceiver
from repro.tcp.rtt import RttEstimator
from repro.tcp.sender import SubflowSender
from repro.tcp.source import Chunk

__all__ = ["Subflow", "SubflowState"]


class SubflowState(enum.Enum):
    CLOSED = "closed"
    CONNECTING = "connecting"
    ESTABLISHED = "established"
    CLOSING = "closing"
    DONE = "done"
    DEAD = "dead"


class Subflow:
    """A single TCP flow between the client and the server on one path."""

    def __init__(
        self,
        loop: EventLoop,
        attached: AttachedPath,
        flow_id: int,
        subflow_id: int,
        direction: str,
        cc: CongestionControl,
        config: TcpConfig,
        is_primary: bool = True,
        backup: bool = False,
        join: bool = False,
    ) -> None:
        if direction not in ("down", "up"):
            raise ValueError(f"direction must be 'down' or 'up': {direction}")
        self.loop = loop
        self.attached = attached
        self.flow_id = flow_id
        self.subflow_id = subflow_id
        self.direction = direction
        self.config = config
        self.is_primary = is_primary
        self.backup = backup
        self.join = join

        self.state = SubflowState.CLOSED
        self.obs = None  # optional TraceRecorder (attach_recorder)
        self.client_established = False
        self.server_established = False
        self.syn_sent_at: Optional[float] = None
        self.established_at: Optional[float] = None
        self.handshake_rtt: Optional[float] = None

        self.rtt = RttEstimator(config)
        if direction == "down":
            data_tx = attached.server_send
            self._ack_tx = attached.client_send
        else:
            data_tx = attached.client_send
            self._ack_tx = attached.server_send
        self.sender = SubflowSender(
            loop, config, cc, self.rtt, data_tx, flow_id, subflow_id
        )
        self._data_tx = data_tx
        self.receiver = SubflowReceiver(
            send_ack=self._send_ack,
            on_data=self._receiver_data,
            loop=loop,
            delayed_acks=config.delayed_acks,
            delayed_ack_timeout_s=config.delayed_ack_timeout_s,
            receive_window_bytes=config.receive_window_bytes,
        )

        self._syn_timer = Timer(loop, self._retransmit_syn)
        self._synack_timer = Timer(loop, self._retransmit_synack)
        self._syn_retries = 0
        self._synack_retries = 0
        self._synack_sent_at: Optional[float] = None
        self._fin_sent = False
        self._peer_fin_seen = False

        # Connection-level callbacks.
        self.on_established: Callable[["Subflow"], None] = lambda sf: None
        self.on_data_arrived: Callable[["Subflow", int, int], None] = (
            lambda sf, dseq, length: None
        )
        self.on_data_acked: Callable[["Subflow", List[Chunk]], None] = (
            lambda sf, chunks: None
        )
        self.on_window_open: Callable[["Subflow"], None] = lambda sf: None
        self.on_dead: Callable[["Subflow"], None] = lambda sf: None
        self.on_closed: Callable[["Subflow"], None] = lambda sf: None
        self.on_rto: Callable[["Subflow"], None] = lambda sf: None

        self.sender.on_data_acked = lambda chunks: self.on_data_acked(self, chunks)
        self.sender.on_window_open = lambda: self.on_window_open(self)
        self.sender.on_dead = self._sender_died
        self.sender.on_rto_event = lambda: self.on_rto(self)

        attached.register(
            flow_id, subflow_id, self._client_receive, self._server_receive
        )

    def attach_recorder(self, recorder) -> None:
        """Route this subflow's (and its sender's) events to ``recorder``."""
        self.obs = recorder
        self.sender.obs = recorder
        self.sender.obs_path = self.name

    # ------------------------------------------------------------------
    # Convenience properties
    # ------------------------------------------------------------------
    @property
    def path(self):
        return self.attached.path

    @property
    def name(self) -> str:
        return self.attached.name

    @property
    def srtt(self) -> float:
        return self.rtt.smoothed_rtt

    @property
    def sender_established(self) -> bool:
        """Whether the data-sourcing side has completed its handshake."""
        if self.direction == "down":
            return self.server_established
        return self.client_established

    @property
    def alive(self) -> bool:
        return self.state not in (SubflowState.DEAD,)

    def can_send(self) -> bool:
        """Whether the scheduler may assign a data chunk right now."""
        return (
            self.alive
            and self.state in (SubflowState.ESTABLISHED, SubflowState.CLOSING)
            and self.sender_established
            and not self.sender.dead
            and self.sender.window_space() > 0
        )

    def send_chunk(self, chunk: Chunk) -> None:
        """Transmit one data chunk assigned by the connection scheduler."""
        self.sender.send_chunk(chunk)

    # ------------------------------------------------------------------
    # Handshake
    # ------------------------------------------------------------------
    def connect(self) -> None:
        """Client initiates the three-way handshake."""
        if self.state != SubflowState.CLOSED:
            return
        self.state = SubflowState.CONNECTING
        self.syn_sent_at = self.loop.now
        self._send_syn()

    def _send_syn(self) -> None:
        flags = PacketFlags.SYN
        if self.join:
            flags |= PacketFlags.MP_JOIN
        if self.obs is not None:
            self.obs.emit(
                "syn", self.loop.now, path=self.name,
                flow_id=self.flow_id, subflow_id=self.subflow_id,
                retries=self._syn_retries, join=self.join,
                backup=self.backup,
            )
        self.attached.client_send(
            Packet(flow_id=self.flow_id, subflow_id=self.subflow_id, flags=flags)
        )
        self._syn_timer.start(self.config.initial_rto_s * (2 ** self._syn_retries))

    def _retransmit_syn(self) -> None:
        if self.client_established or self.state == SubflowState.DEAD:
            return
        self._syn_retries += 1
        if self._syn_retries > self.config.max_syn_retries:
            self._die()
            return
        self._send_syn()

    def _send_synack(self) -> None:
        self._synack_sent_at = self.loop.now
        self.attached.server_send(
            Packet(
                flow_id=self.flow_id,
                subflow_id=self.subflow_id,
                flags=PacketFlags.SYN | PacketFlags.ACK,
            )
        )
        self._synack_timer.start(
            self.config.initial_rto_s * (2 ** self._synack_retries)
        )

    def _retransmit_synack(self) -> None:
        if self.server_established or self.state == SubflowState.DEAD:
            return
        self._synack_retries += 1
        if self._synack_retries > self.config.max_syn_retries:
            return
        self._send_synack()

    # ------------------------------------------------------------------
    # Packet reception — client side
    # ------------------------------------------------------------------
    def _client_receive(self, packet: Packet) -> None:
        if self.state == SubflowState.DEAD:
            return
        if packet.is_syn and packet.is_ack:
            self._handle_synack()
            return
        if packet.is_fin:
            self._handle_fin(receiving_side="client")
            return
        if self.direction == "down" and packet.payload_bytes > 0:
            self.receiver.on_data_packet(packet)
            return
        if self.direction == "up" and packet.is_ack:
            self.sender.on_ack_packet(packet)

    def _handle_synack(self) -> None:
        if not self.client_established:
            self.client_established = True
            self._syn_timer.stop()
            self.state = SubflowState.ESTABLISHED
            self.established_at = self.loop.now
            if self.syn_sent_at is not None:
                self.handshake_rtt = self.loop.now - self.syn_sent_at
                if self.direction == "up":
                    self.rtt.add_sample(self.handshake_rtt)
            if self.obs is not None:
                self.obs.emit(
                    "handshake", self.loop.now, path=self.name,
                    flow_id=self.flow_id, subflow_id=self.subflow_id,
                    rtt_s=self.handshake_rtt, join=self.join,
                    backup=self.backup,
                )
            self.on_established(self)
        # Complete (or re-complete, if our ACK was lost) the handshake.
        self.attached.client_send(
            Packet(flow_id=self.flow_id, subflow_id=self.subflow_id,
                   flags=PacketFlags.ACK)
        )
        if self.direction == "up":
            self.on_window_open(self)

    # ------------------------------------------------------------------
    # Packet reception — server side
    # ------------------------------------------------------------------
    def _server_receive(self, packet: Packet) -> None:
        if self.state == SubflowState.DEAD:
            return
        if packet.is_syn and not packet.is_ack:
            self._send_synack()
            return
        if packet.is_fin:
            self._handle_fin(receiving_side="server")
            return
        if not self.server_established and packet.is_ack:
            self.server_established = True
            self._synack_timer.stop()
            if self.direction == "down":
                if self._synack_sent_at is not None:
                    self.rtt.add_sample(self.loop.now - self._synack_sent_at)
                self.on_window_open(self)
            # Fall through: the establishing packet may carry data ("up").
        if self.direction == "up" and packet.payload_bytes > 0:
            self.receiver.on_data_packet(packet)
            return
        if self.direction == "down" and packet.is_ack and packet.payload_bytes == 0:
            self.sender.on_ack_packet(packet)

    # ------------------------------------------------------------------
    # Receiver plumbing
    # ------------------------------------------------------------------
    def _send_ack(self, rcv_nxt, echo_ts=None, sack=(), rwnd=None):
        self._ack_tx(
            Packet(
                flow_id=self.flow_id,
                subflow_id=self.subflow_id,
                ack=rcv_nxt,
                flags=PacketFlags.ACK,
                echo_ts=echo_ts,
                sack=tuple(sack) if sack else None,
                rwnd=rwnd,
            )
        )

    def _receiver_data(self, data_seq: int, length: int) -> None:
        self.on_data_arrived(self, data_seq, length)

    # ------------------------------------------------------------------
    # Teardown (four-way FIN exchange, initiated by the data sender)
    # ------------------------------------------------------------------
    def start_close(self) -> None:
        """Send a FIN from the data-sourcing side once the sender drains."""
        if self._fin_sent or self.state not in (
            SubflowState.ESTABLISHED, SubflowState.CLOSING
        ):
            return
        self._fin_sent = True
        self.state = SubflowState.CLOSING
        self._data_tx(
            Packet(flow_id=self.flow_id, subflow_id=self.subflow_id,
                   flags=PacketFlags.FIN | PacketFlags.ACK)
        )

    def _handle_fin(self, receiving_side: str) -> None:
        data_receiver_side = "client" if self.direction == "down" else "server"
        reply = (
            self._ack_tx if receiving_side == data_receiver_side else self._data_tx
        )
        if receiving_side == data_receiver_side:
            if self._peer_fin_seen:
                return
            self._peer_fin_seen = True
            # ACK the FIN, then send our own FIN (4-way close).
            reply(Packet(flow_id=self.flow_id, subflow_id=self.subflow_id,
                         flags=PacketFlags.ACK))
            reply(Packet(flow_id=self.flow_id, subflow_id=self.subflow_id,
                         flags=PacketFlags.FIN | PacketFlags.ACK))
            self._finish()
        else:
            # The data sender got the responder's FIN: final ACK.
            reply(Packet(flow_id=self.flow_id, subflow_id=self.subflow_id,
                         flags=PacketFlags.ACK))
            self._finish()

    def _finish(self) -> None:
        if self.state != SubflowState.DEAD:
            self.state = SubflowState.DONE
            self.on_closed(self)

    # ------------------------------------------------------------------
    # Failure
    # ------------------------------------------------------------------
    def _sender_died(self) -> None:
        self._die()

    def _die(self) -> None:
        if self.state == SubflowState.DEAD:
            return
        self.state = SubflowState.DEAD
        self._syn_timer.stop()
        self._synack_timer.stop()
        self.on_dead(self)

    def fail(self) -> List[Chunk]:
        """Administratively kill the subflow; return undelivered chunks."""
        chunks = self.sender.fail()
        self._die()
        return chunks

    def send_window_update(self) -> None:
        """Emit a bare window-update packet from the client.

        Used to reproduce the single window-update packet the paper
        observed on the backup subflow in Fig. 15g.
        """
        self.attached.client_send(
            Packet(
                flow_id=self.flow_id,
                subflow_id=self.subflow_id,
                flags=PacketFlags.ACK | PacketFlags.WINDOW_UPDATE,
            )
        )

    def __repr__(self) -> str:
        role = "primary" if self.is_primary else "secondary"
        if self.backup:
            role += "/backup"
        return (
            f"Subflow({self.flow_id}.{self.subflow_id} on {self.name}, "
            f"{self.direction}, {role}, {self.state.value})"
        )
