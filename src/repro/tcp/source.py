"""Data sources: what a connection has left to transmit.

A source hands out MSS-sized chunks addressed by *data sequence number*
(the connection-level byte offset MPTCP calls the DSN).  Chunks whose
subflow died before being acknowledged are *reinjected* and handed out
again, possibly on a different subflow.
"""

import heapq
from typing import List, Optional, Tuple

from repro.core.errors import ConfigurationError

__all__ = ["Chunk", "BulkSource"]

#: (data_seq, length) — a contiguous run of connection-level bytes.
Chunk = Tuple[int, int]


class BulkSource:
    """A fixed-size transfer (the paper's 10 KB / 100 KB / 1 MB flows).

    Fresh bytes are handed out sequentially; reinjected ranges take
    priority so failover retransmissions go out first, matching the
    Linux MPTCP reinjection queue.
    """

    def __init__(self, total_bytes: int):
        if total_bytes < 0:
            raise ConfigurationError(f"total_bytes must be >= 0: {total_bytes}")
        self.total_bytes = total_bytes
        self._next_fresh = 0
        self._reinjected: List[Chunk] = []  # heap ordered by data_seq

    @property
    def fresh_remaining(self) -> int:
        """Bytes never yet handed to any subflow."""
        return self.total_bytes - self._next_fresh

    def has_data(self) -> bool:
        """Whether another chunk is available to schedule."""
        return bool(self._reinjected) or self._next_fresh < self.total_bytes

    def next_chunk(self, max_bytes: int) -> Optional[Chunk]:
        """Take the next chunk of at most ``max_bytes`` to transmit."""
        if max_bytes <= 0:
            raise ConfigurationError(f"max_bytes must be positive: {max_bytes}")
        if self._reinjected:
            data_seq, length = heapq.heappop(self._reinjected)
            if length > max_bytes:
                heapq.heappush(self._reinjected, (data_seq + max_bytes, length - max_bytes))
                length = max_bytes
            return (data_seq, length)
        if self._next_fresh >= self.total_bytes:
            return None
        length = min(max_bytes, self.total_bytes - self._next_fresh)
        chunk = (self._next_fresh, length)
        self._next_fresh += length
        return chunk

    def extend(self, extra_bytes: int) -> None:
        """Grow the transfer (a persistent connection's next response)."""
        if extra_bytes < 0:
            raise ConfigurationError(f"extra_bytes must be >= 0: {extra_bytes}")
        self.total_bytes += extra_bytes

    def reinject(self, chunks: List[Chunk]) -> None:
        """Queue chunks for (re)transmission ahead of fresh data."""
        for chunk in chunks:
            if chunk[1] > 0:
                heapq.heappush(self._reinjected, chunk)

    def __repr__(self) -> str:
        return (
            f"BulkSource(total={self.total_bytes}, fresh_left="
            f"{self.fresh_remaining}, reinjected={len(self._reinjected)})"
        )
