"""Connection-level machinery: reassembly, progress tracking, plain TCP.

:class:`ConnectionBase` holds everything shared between single-path TCP
and MPTCP: the data source, connection-level (data-sequence)
reassembly with duplicate suppression, the delivery timeline used by
every throughput figure, progress callbacks, and teardown.  The
single-path :class:`TcpConnection` is the one-subflow specialization;
:class:`repro.mptcp.connection.MptcpConnection` is the multi-subflow one.
"""

import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.analysis import throughput as metrics
from repro.core.errors import ConfigurationError
from repro.core.events import EventLoop
from repro.core.intervals import IntervalSet
from repro.core.units import throughput_mbps
from repro.net.fabric import AttachedPath
from repro.tcp.cc.base import CongestionControl
from repro.tcp.cc.reno import Reno
from repro.tcp.config import TcpConfig
from repro.tcp.source import BulkSource, Chunk
from repro.tcp.subflow import Subflow

__all__ = ["ConnectionBase", "TcpConnection", "ConnectionStats"]

_flow_ids = itertools.count(1)


@dataclass
class ConnectionStats:
    """Summary of a finished (or in-flight) transfer."""

    flow_id: int
    total_bytes: int
    started_at: Optional[float]
    completed_at: Optional[float]
    bytes_delivered: int
    retransmits: int
    timeouts: int

    @property
    def duration_s(self) -> Optional[float]:
        if self.started_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.started_at

    @property
    def throughput_mbps(self) -> Optional[float]:
        duration = self.duration_s
        if duration is None:
            return None
        return throughput_mbps(self.total_bytes, duration)


class ConnectionBase:
    """Shared state and logic for any (MP)TCP connection."""

    def __init__(self, loop: EventLoop, total_bytes: int, config: TcpConfig):
        self.loop = loop
        self.config = config
        self.obs = None  # optional TraceRecorder (attach_recorder)
        self.flow_id = next(_flow_ids)
        self.source = BulkSource(total_bytes)
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self._received = IntervalSet()
        self._delivered_prefix = 0
        #: (time, cumulative in-order bytes) whenever the prefix advances.
        self.delivery_log: List[Tuple[float, int]] = []
        self.on_complete: List[Callable[["ConnectionBase"], None]] = []
        self._progress_thresholds: List[Tuple[int, Callable[[], None]]] = []
        self._closed_by_app = False

    # -- to be provided by subclasses ----------------------------------
    @property
    def subflows(self) -> List[Subflow]:
        raise NotImplementedError

    def _pump(self) -> None:
        raise NotImplementedError

    def attach_recorder(self, recorder) -> None:
        """Route this connection's transport events to ``recorder``.

        Purely passive: the recorder never schedules events or consumes
        RNG, so an observed run is bit-identical to an unobserved one.
        """
        self.obs = recorder
        for subflow in self.subflows:
            subflow.attach_recorder(recorder)

    # -- public queries -------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return self.source.total_bytes

    @property
    def bytes_delivered(self) -> int:
        """In-order bytes delivered to the receiving application."""
        return self._delivered_prefix

    @property
    def complete(self) -> bool:
        return self.completed_at is not None

    def stats(self) -> ConnectionStats:
        retransmits = sum(sf.sender.stats.retransmits for sf in self.subflows)
        timeouts = sum(sf.sender.stats.timeouts for sf in self.subflows)
        return ConnectionStats(
            flow_id=self.flow_id,
            total_bytes=self.total_bytes,
            started_at=self.started_at,
            completed_at=self.completed_at,
            bytes_delivered=self.bytes_delivered,
            retransmits=retransmits,
            timeouts=timeouts,
        )

    def throughput_mbps(self) -> Optional[float]:
        """Whole-transfer average throughput, if the transfer finished."""
        return self.stats().throughput_mbps

    def time_to_bytes(self, nbytes: int) -> Optional[float]:
        """Seconds from start until ``nbytes`` were delivered in order.

        This is the paper's flow-size metric ("flow size is measured
        using the cumulative number of bytes acknowledged").
        """
        return metrics.time_to_bytes(self.delivery_log, self.started_at, nbytes)

    def throughput_at_bytes(self, nbytes: int) -> Optional[float]:
        """Average throughput (Mbit/s) over the first ``nbytes`` delivered."""
        return metrics.throughput_at_bytes(
            self.delivery_log, self.started_at, nbytes
        )

    def notify_at_bytes(self, threshold: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` once ``threshold`` in-order bytes are delivered."""
        if threshold <= self._delivered_prefix:
            callback()
            return
        self._progress_thresholds.append((threshold, callback))
        self._progress_thresholds.sort(key=lambda item: item[0])

    # -- transfer extension (persistent HTTP connections) ---------------
    def append_transfer(self, extra_bytes: int) -> None:
        """Add more bytes to send on this (already open) connection."""
        if self._closed_by_app:
            raise ConfigurationError("cannot append to a closed connection")
        self.source.extend(extra_bytes)
        if extra_bytes > 0:
            self.completed_at = None
        self._pump()

    def close(self) -> None:
        """Application close: FINs go out once everything is delivered."""
        self._closed_by_app = True
        self._maybe_close_subflows()

    # -- plumbing shared with subclasses --------------------------------
    def _handle_data(self, subflow: Subflow, data_seq: int, length: int) -> None:
        new_bytes = self._received.add(data_seq, data_seq + length)
        if new_bytes == 0:
            return
        prefix = self._received.contiguous_from(0)
        if prefix > self._delivered_prefix:
            self._delivered_prefix = prefix
            self.delivery_log.append((self.loop.now, prefix))
            self._fire_progress()
            self._maybe_complete()

    def _fire_progress(self) -> None:
        while (
            self._progress_thresholds
            and self._progress_thresholds[0][0] <= self._delivered_prefix
        ):
            _, callback = self._progress_thresholds.pop(0)
            callback()

    def _maybe_complete(self) -> None:
        if self.completed_at is None and self._delivered_prefix >= self.total_bytes:
            self.completed_at = self.loop.now
            for callback in list(self.on_complete):
                callback(self)
            self._maybe_close_subflows()

    def _handle_acked(self, subflow: Subflow, chunks: List[Chunk]) -> None:
        self._maybe_close_subflows()

    def _maybe_close_subflows(self) -> None:
        # FINs only go out after the *application* closes: completion
        # alone must not tear down a persistent (keep-alive) connection.
        if not self._closed_by_app:
            return
        # ... and never before the receiver has everything: a subflow
        # that idles mid-transfer must stay open, because a failover on
        # the other path may reinject data onto it later.
        if not self.complete:
            return
        if self.source.has_data():
            return
        for subflow in self.subflows:
            if subflow.alive and subflow.sender.done and subflow.sender_established:
                subflow.start_close()

    def _live_reinjection_filter(self, chunks: List[Chunk]) -> List[Chunk]:
        """Drop chunk ranges the receiver already has."""
        surviving: List[Chunk] = []
        for data_seq, length in chunks:
            for start, end in self._received.missing_within(
                data_seq, data_seq + length
            ):
                surviving.append((start, end - start))
        return surviving


class TcpConnection(ConnectionBase):
    """A single-path TCP bulk transfer over one attached path.

    Parameters
    ----------
    direction:
        ``"down"`` for a server-to-client transfer (the paper's default
        presentation), ``"up"`` for client-to-server.
    cc_factory:
        Builds the congestion controller; defaults to Reno, matching
        the decoupled baseline.  Pass ``Cubic`` for Linux defaults.
    """

    def __init__(
        self,
        loop: EventLoop,
        attached: AttachedPath,
        total_bytes: int,
        direction: str = "down",
        cc_factory: Callable[[TcpConfig], CongestionControl] = Reno,
        config: Optional[TcpConfig] = None,
    ) -> None:
        config = config if config is not None else TcpConfig()
        super().__init__(loop, total_bytes, config)
        self.direction = direction
        self.subflow = Subflow(
            loop, attached, self.flow_id, 0, direction,
            cc_factory(config), config, is_primary=True,
        )
        self.subflow.on_data_arrived = self._handle_data
        self.subflow.on_data_acked = self._handle_acked
        self.subflow.on_window_open = lambda sf: self._pump()
        self.subflow.on_established = lambda sf: self._pump()

    @property
    def subflows(self) -> List[Subflow]:
        return [self.subflow]

    def start(self) -> None:
        """Begin the handshake (and then the transfer)."""
        if self.started_at is not None:
            return
        self.started_at = self.loop.now
        self.delivery_log.append((self.loop.now, 0))
        self.subflow.connect()
        self._maybe_complete()

    def _pump(self) -> None:
        while self.source.has_data() and self.subflow.can_send():
            chunk = self.source.next_chunk(self.config.mss_bytes)
            if chunk is None:
                break
            self.subflow.send_chunk(chunk)
        self._maybe_close_subflows()
