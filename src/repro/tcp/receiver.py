"""The receive engine: in-order delivery and cumulative ACK generation.

Matches the relevant behaviour of the Linux receiver the paper
measured: every data segment is acknowledged immediately (no delayed
ACKs, which Linux disables under load anyway), ACKs carry a timestamp
echo for clean RTT samples, and out-of-order ranges are reported as
SACK blocks.
"""

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.events import EventLoop, Timer
from repro.core.intervals import IntervalSet
from repro.core.packet import Packet

__all__ = ["SubflowReceiver"]

#: (length, data_seq) keyed by subflow sequence number.
_Segment = Tuple[int, int]

#: Real TCP fits at most 3-4 SACK blocks in the options space.
MAX_SACK_BLOCKS = 3

#: (rcv_nxt, echo_ts, sack_blocks, advertised_window) -> sends an ACK.
AckSender = Callable[
    [int, Optional[float], Tuple[Tuple[int, int], ...], int], None
]


class SubflowReceiver:
    """Reassembles a subflow's byte stream and ACKs every data packet."""

    def __init__(
        self,
        send_ack: AckSender,
        on_data: Callable[[int, int], None],
        loop: Optional[EventLoop] = None,
        delayed_acks: bool = False,
        delayed_ack_timeout_s: float = 0.04,
        receive_window_bytes: int = 4 * 1024 * 1024,
    ) -> None:
        self._send_ack = send_ack
        self._on_data = on_data
        self.rcv_nxt = 0
        self._out_of_order: Dict[int, _Segment] = {}
        self._received = IntervalSet()
        self.bytes_received = 0
        self.duplicate_segments = 0
        self.acks_sent = 0
        self.receive_window_bytes = receive_window_bytes
        self._buffered_bytes = 0
        self._delayed = bool(delayed_acks and loop is not None)
        self._pending_segments = 0
        self._last_echo: Optional[float] = None
        self._delack_timer: Optional[Timer] = None
        self._delack_timeout = delayed_ack_timeout_s
        if self._delayed:
            assert loop is not None
            self._delack_timer = Timer(loop, self._flush_delayed_ack)

    @property
    def out_of_order_segments(self) -> int:
        return len(self._out_of_order)

    def _sack_blocks(self) -> Tuple[Tuple[int, int], ...]:
        blocks: List[Tuple[int, int]] = [
            (start, end) for start, end in self._received if end > self.rcv_nxt
        ]
        return tuple(blocks[-MAX_SACK_BLOCKS:])

    @property
    def advertised_window(self) -> int:
        """Flow-control window: buffer capacity minus out-of-order backlog.

        In-order bytes are handed to the application immediately, so
        only buffered out-of-order data occupies the receive buffer.
        """
        return max(0, self.receive_window_bytes - self._buffered_bytes)

    def _emit_ack(self, echo: Optional[float]) -> None:
        self.acks_sent += 1
        self._pending_segments = 0
        if self._delack_timer is not None:
            self._delack_timer.stop()
        self._send_ack(self.rcv_nxt, echo, self._sack_blocks(),
                       self.advertised_window)

    def _ack(self, packet: Packet, immediate: bool = True) -> None:
        echo = packet.sent_at if packet.sent_at >= 0 else None
        if not self._delayed or immediate:
            self._emit_ack(echo)
            return
        # RFC 1122 delayed ACK: hold at most one segment's worth.
        self._pending_segments += 1
        self._last_echo = echo
        if self._pending_segments >= 2:
            self._emit_ack(echo)
        else:
            assert self._delack_timer is not None
            self._delack_timer.start(self._delack_timeout)

    def _flush_delayed_ack(self) -> None:
        if self._pending_segments > 0:
            self._emit_ack(self._last_echo)

    def on_data_packet(self, packet: Packet) -> None:
        """Handle an arriving data segment, ACKing cumulatively."""
        data_seq = packet.data_seq if packet.data_seq is not None else packet.seq
        if packet.end_seq <= self.rcv_nxt:
            # Entirely old data (spurious retransmission): re-ACK now.
            self.duplicate_segments += 1
            self._ack(packet, immediate=True)
            return
        self._received.add(packet.seq, packet.end_seq)
        if packet.seq > self.rcv_nxt:
            # A hole precedes this segment: buffer it and dup-ACK
            # immediately (fast retransmit depends on it).
            if packet.seq not in self._out_of_order:
                self._out_of_order[packet.seq] = (
                    packet.payload_bytes, data_seq
                )
                self._buffered_bytes += packet.payload_bytes
            self._ack(packet, immediate=True)
            return
        # In-order (possibly partially duplicate) segment.
        overlap = self.rcv_nxt - packet.seq
        self._accept(packet.seq + overlap, packet.payload_bytes - overlap,
                     data_seq + overlap)
        filled_hole = bool(self._out_of_order)
        self._drain_out_of_order()
        # An ACK that fills a hole should also go out immediately.
        self._ack(packet, immediate=filled_hole)

    def _accept(self, seq: int, length: int, data_seq: int) -> None:
        if length <= 0:
            return
        self.rcv_nxt = seq + length
        self.bytes_received += length
        self._on_data(data_seq, length)

    def _drain_out_of_order(self) -> None:
        while self.rcv_nxt in self._out_of_order:
            length, data_seq = self._out_of_order.pop(self.rcv_nxt)
            self._buffered_bytes -= length
            self._accept(self.rcv_nxt, length, data_seq)
