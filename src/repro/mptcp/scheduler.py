"""MPTCP packet schedulers.

The scheduler picks, among subflows that currently have congestion
window space, which one carries the next data chunk.  Linux's default
is the lowest-smoothed-RTT scheduler; a round-robin alternative is
provided for ablation.
"""

from abc import ABC, abstractmethod
from typing import List

from repro.core.errors import ConfigurationError
from repro.tcp.subflow import Subflow

__all__ = [
    "Scheduler",
    "MinRttScheduler",
    "RoundRobinScheduler",
    "RedundantScheduler",
    "make_scheduler",
]


class Scheduler(ABC):
    """Chooses the next subflow(s) to receive a data chunk."""

    @abstractmethod
    def pick(self, eligible: List[Subflow]) -> Subflow:
        """Return one of ``eligible`` (guaranteed non-empty)."""

    def pick_all(self, eligible: List[Subflow]) -> List[Subflow]:
        """Subflows that should each carry a copy of the next chunk.

        Default: exactly one (the :meth:`pick` winner); redundant
        schedulers override this to duplicate the chunk.
        """
        return [self.pick(eligible)]


class MinRttScheduler(Scheduler):
    """Prefer the subflow with the lowest smoothed RTT (Linux default)."""

    def pick(self, eligible: List[Subflow]) -> Subflow:
        return min(eligible, key=lambda sf: (sf.srtt, sf.subflow_id))


class RoundRobinScheduler(Scheduler):
    """Rotate through eligible subflows."""

    def __init__(self) -> None:
        self._last_id = -1

    def pick(self, eligible: List[Subflow]) -> Subflow:
        ordered = sorted(eligible, key=lambda sf: sf.subflow_id)
        for subflow in ordered:
            if subflow.subflow_id > self._last_id:
                self._last_id = subflow.subflow_id
                return subflow
        self._last_id = ordered[0].subflow_id
        return ordered[0]


class RedundantScheduler(Scheduler):
    """Send every chunk on *every* available subflow (extension).

    Trades bytes for latency: the receiver keeps whichever copy lands
    first, so short-flow completion tracks the currently-fastest path
    without having to predict it.  (Cf. the ReMP/redundant schedulers
    in later MPTCP literature — not part of the paper's kernel.)
    """

    def pick(self, eligible: List[Subflow]) -> Subflow:
        return min(eligible, key=lambda sf: (sf.srtt, sf.subflow_id))

    def pick_all(self, eligible: List[Subflow]) -> List[Subflow]:
        return sorted(eligible, key=lambda sf: sf.subflow_id)


def make_scheduler(name: str) -> Scheduler:
    """Build a scheduler by name: ``minrtt``, ``roundrobin``, ``redundant``."""
    if name == "minrtt":
        return MinRttScheduler()
    if name == "roundrobin":
        return RoundRobinScheduler()
    if name == "redundant":
        return RedundantScheduler()
    raise ConfigurationError(f"unknown scheduler: {name!r}")
