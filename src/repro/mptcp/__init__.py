"""Multipath TCP over multiple client interfaces.

The model matches the Linux MPTCP v0.88 implementation measured in the
paper: the *primary subflow* is established first on the interface
chosen by the client; the second interface joins (MP_JOIN) only after
the primary handshake completes.  Congestion control is either
*decoupled* (independent Reno per subflow) or *coupled* (RFC 6356 LIA),
and the connection runs in Full-MPTCP, Backup, or Single-Path mode.
"""

from repro.mptcp.scheduler import (
    Scheduler,
    MinRttScheduler,
    RoundRobinScheduler,
    make_scheduler,
)
from repro.mptcp.connection import MptcpConnection, MptcpOptions
from repro.mptcp.events import (
    schedule_multipath_off,
    schedule_multipath_on,
    schedule_unplug,
    schedule_replug,
)

__all__ = [
    "Scheduler",
    "MinRttScheduler",
    "RoundRobinScheduler",
    "make_scheduler",
    "MptcpConnection",
    "MptcpOptions",
    "schedule_multipath_off",
    "schedule_multipath_on",
    "schedule_unplug",
    "schedule_replug",
]
