"""Failure-injection helpers for the §3.6 experiments.

The paper disables interfaces in two ways with different observable
behaviour:

* ``iproute "multipath off"`` — the stack is notified and fails over
  (Figs. 15e, 15f).  Model: :func:`schedule_multipath_off`.
* physically unplugging the tethered phone — by default nothing is
  notified and packets silently vanish (Fig. 15g's stall).  The paper
  also observed one case (Fig. 15h, WiFi unplugged) where the kernel
  *did* notice immediately; pass ``detected=True`` to model that.
"""

from repro.core.events import EventLoop
from repro.net.path import Path

__all__ = [
    "schedule_multipath_off",
    "schedule_multipath_on",
    "schedule_unplug",
    "schedule_replug",
]


def schedule_multipath_off(loop: EventLoop, path: Path, at: float) -> None:
    """Administratively remove ``path`` at time ``at`` (stack notified)."""
    loop.call_at(at, path.set_multipath_off)


def schedule_multipath_on(loop: EventLoop, path: Path, at: float) -> None:
    """Administratively restore ``path`` at time ``at``."""
    loop.call_at(at, path.set_multipath_on)


def schedule_unplug(
    loop: EventLoop, path: Path, at: float, detected: bool = False
) -> None:
    """Physically disconnect ``path`` at time ``at``.

    With ``detected=False`` (the Fig. 15g case) packets blackhole and
    no endpoint learns anything.  With ``detected=True`` (the Fig. 15h
    case) the netdev removal also raises the administrative signal, so
    MPTCP fails over immediately.
    """

    def _unplug() -> None:
        path.unplug()
        if detected:
            path.set_multipath_off()

    loop.call_at(at, _unplug)


def schedule_replug(loop: EventLoop, path: Path, at: float) -> None:
    """Reconnect a previously unplugged ``path`` at time ``at``.

    Reconnection is silent, exactly like the unplug: retransmission
    timers discover the restored connectivity.
    """
    loop.call_at(at, path.replug)
