"""The MPTCP connection: subflow management, scheduling, failover.

Semantics follow the Linux MPTCP v0.88 stack the paper used:

* the client opens the *primary subflow* on the default-route
  interface; every other interface joins with MP_JOIN only after the
  primary handshake completes (§3.1);
* the scheduler assigns each data chunk to one subflow with window
  space (lowest-RTT by default);
* in Backup mode, backup subflows complete their handshake (their
  SYN/FIN wakeups are what costs energy in §3.6) but carry no data
  until every non-backup subflow is *known* dead.  An interface
  removed via iproute ("multipath off") notifies the stack and triggers
  failover with reinjection; a silently unplugged interface does not,
  reproducing the stall of Fig. 15g;
* in Single-Path mode (Paasch et al., §3.6), no second subflow exists
  until the active one dies, costing extra round trips on failover.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.core.events import EventLoop
from repro.net.fabric import AttachedPath
from repro.net.path import Path
from repro.tcp.cc import (
    Cubic,
    LiaCoupling,
    LiaSubflowCc,
    OliaCoupling,
    OliaSubflowCc,
    Reno,
    validate_cc,
)
from repro.tcp.config import TcpConfig
from repro.tcp.connection import ConnectionBase
from repro.tcp.source import Chunk
from repro.tcp.subflow import Subflow, SubflowState
from repro.mptcp.scheduler import Scheduler, make_scheduler

__all__ = ["MptcpOptions", "MptcpConnection"]

COUPLED = "coupled"
DECOUPLED = "decoupled"
OLIA = "olia"

FULL_MPTCP = "full"
BACKUP_MODE = "backup"
SINGLE_PATH_MODE = "singlepath"


@dataclass
class MptcpOptions:
    """Configuration of one MPTCP connection.

    Attributes
    ----------
    primary:
        Name of the path carrying the primary subflow (the paper's key
        knob: "it is crucial to select the correct network for the
        primary subflow").
    congestion_control:
        ``"coupled"`` (LIA), ``"decoupled"`` (per-subflow Reno, footnote
        5 of the paper), ``"olia"``, or ``"cubic"`` (decoupled CUBIC).
    mode:
        ``"full"``, ``"backup"``, or ``"singlepath"``.
    backup_paths:
        Path names acting as backups in Backup mode; defaults to every
        non-primary path.
    join_delay_s:
        Extra delay between primary establishment and MP_JOIN SYNs.
    emit_backup_window_update:
        Reproduce the single window-update packet observed on the
        backup subflow when the active path silently blackholes
        (Fig. 15g).
    """

    primary: str = "wifi"
    congestion_control: str = COUPLED
    mode: str = FULL_MPTCP
    scheduler: str = "minrtt"
    backup_paths: Optional[List[str]] = None
    join_delay_s: float = 0.0
    #: Additional join delay measured in primary handshake RTTs.  In
    #: Linux MPTCP v0.88 the MP_JOIN SYN goes out only after the
    #: primary's third ACK and the ADD_ADDR exchange — about one more
    #: round trip on the primary path (visible in the paper's Fig. 9a,
    #: where the LTE subflow comes up well after the WiFi handshake).
    join_delay_rtts: float = 1.0
    emit_backup_window_update: bool = True
    #: Ablation knob: open every subflow's handshake at connection
    #: start instead of waiting for the primary to establish (real
    #: Linux MPTCP cannot do this — the MP_JOIN key arrives with the
    #: primary's handshake — but it isolates how much of the
    #: primary-subflow effect comes from the join delay).
    simultaneous_join: bool = False
    #: Linux MPTCP's ``ndiffports`` path manager opens several subflows
    #: over the *same* interface (different source ports) to defeat
    #: per-flow traffic shaping.  1 = the paper's fullmesh-style setup.
    subflows_per_path: int = 1

    def __post_init__(self) -> None:
        # Canonicalize through the unified registry ("lia" -> "coupled")
        # so every layer shares one name set and one error message.
        self.congestion_control = validate_cc(self.congestion_control, "mptcp")
        if self.mode not in (FULL_MPTCP, BACKUP_MODE, SINGLE_PATH_MODE):
            raise ConfigurationError(f"unknown MPTCP mode: {self.mode!r}")
        if self.join_delay_s < 0:
            raise ConfigurationError(f"negative join delay: {self.join_delay_s}")
        if self.subflows_per_path < 1:
            raise ConfigurationError(
                f"subflows_per_path must be >= 1: {self.subflows_per_path}"
            )


class MptcpConnection(ConnectionBase):
    """One MPTCP bulk transfer across several client interfaces."""

    def __init__(
        self,
        loop: EventLoop,
        attached_paths: List[AttachedPath],
        total_bytes: int,
        direction: str = "down",
        options: Optional[MptcpOptions] = None,
        config: Optional[TcpConfig] = None,
    ) -> None:
        config = config if config is not None else TcpConfig()
        super().__init__(loop, total_bytes, config)
        self.options = options if options is not None else MptcpOptions()
        self.direction = direction
        self._scheduler: Scheduler = make_scheduler(self.options.scheduler)

        by_name = {attached.name: attached for attached in attached_paths}
        if self.options.primary not in by_name:
            raise ConfigurationError(
                f"primary path {self.options.primary!r} not among "
                f"{sorted(by_name)}"
            )
        ordered = [by_name[self.options.primary]] + [
            attached for attached in attached_paths
            if attached.name != self.options.primary
        ]
        backup_names = set(
            self.options.backup_paths
            if self.options.backup_paths is not None
            else [a.name for a in ordered[1:]]
        ) if self.options.mode in (BACKUP_MODE, SINGLE_PATH_MODE) else set()

        self._lia: Optional[LiaCoupling] = None
        self._olia: Optional[OliaCoupling] = None
        if self.options.congestion_control == COUPLED:
            self._lia = LiaCoupling()
        elif self.options.congestion_control == OLIA:
            self._olia = OliaCoupling()

        self._subflows: List[Subflow] = []
        self._pending_attachments: List[Tuple[AttachedPath, bool]] = []
        #: (time, cumulative bytes) per subflow name, for Figs. 9 and 10.
        self.subflow_delivery_logs: Dict[str, List[Tuple[float, int]]] = {}
        self._window_update_sent = False
        self._next_subflow_id = 0
        #: Per-subflow byte cursors used by the redundant scheduler.
        self._redundant_offsets: Dict[int, int] = {}

        for index, attached in enumerate(ordered):
            is_backup = attached.name in backup_names
            if self.options.mode == SINGLE_PATH_MODE and index > 0:
                # Break-before-make: defer even creating the subflow.
                self._pending_attachments.append((attached, is_backup))
                continue
            for extra in range(self.options.subflows_per_path):
                self._create_subflow(
                    attached,
                    is_primary=(index == 0 and extra == 0),
                    backup=is_backup,
                )

        for attached in ordered:
            attached.path.on_admin_change.append(self._on_path_admin_change)

    # ------------------------------------------------------------------
    # Subflow construction
    # ------------------------------------------------------------------
    def _make_cc(self):
        name = self.options.congestion_control
        if name == COUPLED:
            assert self._lia is not None
            return LiaSubflowCc(self.config, self._lia)
        if name == OLIA:
            assert self._olia is not None
            return OliaSubflowCc(self.config, self._olia)
        if name == "cubic":
            return Cubic(self.config)
        return Reno(self.config)

    def _create_subflow(
        self, attached: AttachedPath, is_primary: bool, backup: bool
    ) -> Subflow:
        subflow_id = self._next_subflow_id
        self._next_subflow_id += 1
        subflow = Subflow(
            self.loop, attached, self.flow_id, subflow_id, self.direction,
            self._make_cc(), self.config,
            is_primary=is_primary, backup=backup, join=not is_primary,
        )
        subflow.on_established = self._on_subflow_established
        subflow.on_data_arrived = self._on_subflow_data
        subflow.on_data_acked = self._handle_acked
        subflow.on_window_open = lambda sf: self._pump()
        subflow.on_dead = self._on_subflow_dead
        subflow.on_rto = self._on_subflow_rto
        self._subflows.append(subflow)
        self.subflow_delivery_logs.setdefault(attached.name, [])
        if self.obs is not None:
            # Covers subflows created after attachment too, e.g. the
            # deferred fallbacks of Single-Path mode.
            subflow.attach_recorder(self.obs)
            self._emit_subflow_add(subflow)
        return subflow

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def attach_recorder(self, recorder) -> None:
        super().attach_recorder(recorder)
        for subflow in self._subflows:
            self._emit_subflow_add(subflow)

    def _emit_subflow_add(self, subflow: Subflow) -> None:
        self.obs.emit(
            "subflow_add", self.loop.now, path=subflow.name,
            flow_id=self.flow_id, subflow_id=subflow.subflow_id,
            primary=subflow.is_primary, backup=subflow.backup,
        )

    def _failure_reason(self, subflow: Subflow) -> str:
        path = subflow.path
        if not path.admin_up:
            return "admin_down"
        if path.unplugged:
            return "blackhole"
        return "retries_exhausted"

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def subflows(self) -> List[Subflow]:
        return list(self._subflows)

    @property
    def primary_subflow(self) -> Subflow:
        return self._subflows[0]

    def subflow_on(self, path_name: str) -> Optional[Subflow]:
        """The (most recent) subflow riding the named path."""
        for subflow in reversed(self._subflows):
            if subflow.name == path_name:
                return subflow
        return None

    def start(self) -> None:
        """Open the primary subflow; secondaries join once it completes."""
        if self.started_at is not None:
            return
        self.started_at = self.loop.now
        self.delivery_log.append((self.loop.now, 0))
        self.primary_subflow.connect()
        if self.options.simultaneous_join:
            for subflow in self._subflows:
                if not subflow.is_primary:
                    subflow.connect()
        self._maybe_complete()

    # ------------------------------------------------------------------
    # Subflow events
    # ------------------------------------------------------------------
    def _on_subflow_established(self, subflow: Subflow) -> None:
        if subflow.is_primary:
            delay = self.options.join_delay_s
            delay += self.options.join_delay_rtts * (subflow.handshake_rtt or 0.0)
            for other in self._subflows:
                if not other.is_primary and other.state == SubflowState.CLOSED:
                    self.loop.call_later(delay, other.connect)
        self._pump()

    def _on_subflow_data(self, subflow: Subflow, data_seq: int, length: int) -> None:
        log = self.subflow_delivery_logs[subflow.name]
        previous = log[-1][1] if log else 0
        log.append((self.loop.now, previous + length))
        self._handle_data(subflow, data_seq, length)

    def _on_subflow_dead(self, subflow: Subflow) -> None:
        self._fail_over(subflow)

    def _on_subflow_rto(self, subflow: Subflow) -> None:
        """Reproduce Fig. 15g's lone window update on the backup subflow.

        When the active path silently blackholes in Backup mode, the
        kernel the paper measured sent exactly one TCP window update on
        the backup subflow and then halted.  The transfer resumes only
        if the unplugged phone is reconnected.
        """
        if (
            self.options.mode != BACKUP_MODE
            or not self.options.emit_backup_window_update
            or self._window_update_sent
            or not subflow.path.unplugged
        ):
            return
        for other in self._subflows:
            if other.backup and other.alive and other.client_established:
                other.send_window_update()
                self._window_update_sent = True
                break

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------
    def _on_path_admin_change(self, path: Path) -> None:
        if path.admin_up:
            return
        for subflow in self._subflows:
            if subflow.name == path.name and subflow.alive:
                # fail() marks the subflow dead, which re-enters
                # _fail_over via on_dead with the chunks preserved.
                chunks = subflow.fail()
                self._reinject(chunks)
        self._activate_fallbacks()
        self._pump()

    def _fail_over(self, subflow: Subflow) -> None:
        if self.obs is not None:
            # Every failure mode funnels through here via on_dead:
            # administrative removal, SYN-retry exhaustion, data-retry
            # exhaustion on a blackholed path.
            self.obs.emit(
                "subflow_fail", self.loop.now, path=subflow.name,
                flow_id=self.flow_id, subflow_id=subflow.subflow_id,
                reason=self._failure_reason(subflow),
            )
        chunks = subflow.sender.fail()
        self._reinject(chunks)
        self._detach_cc(subflow)
        self._activate_fallbacks()
        self._pump()

    def _detach_cc(self, subflow: Subflow) -> None:
        cc = subflow.sender.cc
        detach = getattr(cc, "detach", None)
        if callable(detach):
            detach()

    def _reinject(self, chunks: List[Chunk]) -> None:
        surviving = self._live_reinjection_filter(chunks)
        if surviving:
            self.source.reinject(surviving)

    def _activate_fallbacks(self) -> None:
        """Bring up deferred subflows in Single-Path mode."""
        if self.options.mode != SINGLE_PATH_MODE:
            return
        if any(sf.alive for sf in self._subflows):
            return
        if not self._pending_attachments:
            return
        attached, backup = self._pending_attachments.pop(0)
        subflow = self._create_subflow(attached, is_primary=False, backup=False)
        subflow.join = True
        subflow.connect()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _schedulable(self, subflow: Subflow) -> bool:
        if self.options.mode != BACKUP_MODE:
            return True
        if not subflow.backup:
            return True
        # A backup subflow carries data only when every non-backup
        # subflow is known dead (administrative removal, SYN failure,
        # or retry exhaustion) — silent blackholes do not count.
        return all(
            not sf.alive for sf in self._subflows if not sf.backup
        )

    def _pump(self) -> None:
        if self.options.scheduler == "redundant":
            self._pump_redundant()
            return
        while self.source.has_data():
            eligible = [
                sf for sf in self._subflows
                if sf.can_send() and self._schedulable(sf)
            ]
            if not eligible:
                break
            subflow = self._scheduler.pick(eligible)
            chunk = self.source.next_chunk(self.config.mss_bytes)
            if chunk is None:
                break
            if self.obs is not None:
                self.obs.emit(
                    "sched", self.loop.now, path=subflow.name,
                    flow_id=self.flow_id, subflow_id=subflow.subflow_id,
                    data_seq=chunk[0], length=chunk[1],
                    srtt={
                        f"{sf.name}/{sf.subflow_id}": sf.srtt
                        for sf in eligible
                    },
                )
            subflow.send_chunk(chunk)
        self._maybe_close_subflows()

    def _pump_redundant(self) -> None:
        """Redundant scheduling: every subflow streams the whole transfer.

        Each subflow keeps its own cursor over the connection's byte
        space and transmits independently at its own window's pace; the
        connection-level interval set keeps whichever copy of each
        range lands first.  No ``sched`` trace events: there is no
        decision to record — every subflow carries everything.
        """
        total = self.total_bytes
        for subflow in self._subflows:
            if not (subflow.can_send() and self._schedulable(subflow)):
                continue
            offset = self._redundant_offsets.get(subflow.subflow_id, 0)
            while subflow.can_send() and offset < total:
                length = min(self.config.mss_bytes, total - offset)
                subflow.send_chunk((offset, length))
                offset += length
            self._redundant_offsets[subflow.subflow_id] = offset
        if any(cursor >= total for cursor in self._redundant_offsets.values()):
            # At least one copy of everything is out: the shared source
            # is logically drained (enables teardown bookkeeping).
            while self.source.has_data():
                self.source.next_chunk(1 << 20)
        self._maybe_close_subflows()
