"""Picklable task callables and result summaries for sweeps.

:class:`~repro.scenario.TransferResult` holds a live connection object
(callbacks, event-loop references) and cannot cross a process
boundary.  The wrappers here run the same simulations but return
:class:`TransferSummary`, a plain-data snapshot exposing the metrics
the experiment layer actually consumes (duration, throughput, the
throughput-at-flow-size curve, subflow delivery logs).
"""

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.rng import DEFAULT_SEED
from repro.linkem.conditions import LocationCondition
from repro.scenario import TransferResult
from repro.tcp.config import TcpConfig

__all__ = [
    "TransferSummary",
    "collect_site_runs",
    "mptcp_transfer",
    "summarize",
    "tcp_transfer",
]


@dataclass
class TransferSummary:
    """Plain-data outcome of one bulk transfer (picklable/cacheable)."""

    total_bytes: int
    started_at: Optional[float]
    completed_at: Optional[float]
    delivery_log: List[Tuple[float, int]] = field(default_factory=list)
    subflow_delivery_logs: Dict[str, List[Tuple[float, int]]] = field(
        default_factory=dict
    )

    @property
    def completed(self) -> bool:
        return self.completed_at is not None

    @property
    def duration_s(self) -> Optional[float]:
        if self.started_at is None or self.completed_at is None:
            return None
        return self.completed_at - self.started_at

    @property
    def throughput_mbps(self) -> Optional[float]:
        duration = self.duration_s
        if not duration:
            return None
        return self.total_bytes * 8.0 / duration / 1e6

    def time_to_bytes(self, nbytes: int) -> Optional[float]:
        """Seconds from start until ``nbytes`` were delivered in order.

        Mirrors :meth:`repro.tcp.connection.ConnectionBase.time_to_bytes`
        exactly, bisecting the recorded delivery log.
        """
        if self.started_at is None or nbytes <= 0:
            return None
        cums = [c for _, c in self.delivery_log]
        index = bisect.bisect_left(cums, nbytes)
        if index >= len(cums):
            return None
        return self.delivery_log[index][0] - self.started_at

    def throughput_at_bytes(self, nbytes: int) -> Optional[float]:
        """Average throughput (Mbit/s) over the first ``nbytes``."""
        elapsed = self.time_to_bytes(nbytes)
        if elapsed is None or elapsed <= 0:
            return None
        return nbytes * 8.0 / elapsed / 1e6


def summarize(result: TransferResult) -> TransferSummary:
    """Snapshot a :class:`TransferResult` into plain data."""
    connection = result.connection
    subflow_logs: Dict[str, List[Tuple[float, int]]] = {}
    for name, log in getattr(connection, "subflow_delivery_logs", {}).items():
        subflow_logs[name] = list(log)
    return TransferSummary(
        total_bytes=result.total_bytes,
        started_at=result.started_at,
        completed_at=result.completed_at,
        delivery_log=list(result.delivery_log),
        subflow_delivery_logs=subflow_logs,
    )


def tcp_transfer(
    condition: LocationCondition,
    path: str,
    nbytes: int,
    direction: str = "down",
    cc: str = "cubic",
    seed: int = DEFAULT_SEED,
    deadline_s: float = 240.0,
    config: Optional[TcpConfig] = None,
) -> TransferSummary:
    """Worker-side single-path TCP transfer (see ``run_tcp_at``)."""
    from repro.experiments.common import run_tcp_at

    return summarize(run_tcp_at(
        condition, path, nbytes, direction=direction, cc=cc, seed=seed,
        deadline_s=deadline_s, config=config,
    ))


def mptcp_transfer(
    condition: LocationCondition,
    primary: str,
    congestion_control: str,
    nbytes: int,
    direction: str = "down",
    seed: int = DEFAULT_SEED,
    deadline_s: float = 240.0,
    config: Optional[TcpConfig] = None,
) -> TransferSummary:
    """Worker-side MPTCP transfer (see ``run_mptcp_at``)."""
    from repro.experiments.common import run_mptcp_at

    return summarize(run_mptcp_at(
        condition, primary, congestion_control, nbytes, direction=direction,
        seed=seed, deadline_s=deadline_s, config=config,
    ))


def collect_site_runs(site_name: str, seed: int = DEFAULT_SEED) -> list:
    """Collect one Table-1 site's crowd measurement runs.

    Site collection is independent by construction: every RNG stream
    the app and world model draw from is named after the site, so
    collecting sites in parallel and concatenating in site order is
    bit-identical to :meth:`CellVsWifiApp.collect_all`.
    """
    from repro.crowd.app import CellVsWifiApp
    from repro.crowd.world import TABLE1_SITES

    by_name = {site.name: site for site in TABLE1_SITES}
    if site_name not in by_name:
        raise KeyError(f"unknown Table-1 site: {site_name!r}")
    return CellVsWifiApp(seed=seed).collect_site(by_name[site_name])
