"""Worker-side task callables for sweeps.

The one real entry point is :func:`run_transfer_spec`: workers receive
a declarative :class:`~repro.workload.spec.TransferSpec` and interpret
it through a :class:`~repro.workload.session.Session`, returning the
picklable :class:`~repro.workload.report.TransferReport`.  New code
should build specs and go through the Session (or
:func:`repro.experiments.common.tcp_task` / ``mptcp_task``, which do).
"""

from typing import Optional

from repro.core.rng import DEFAULT_SEED
from repro.workload.report import TransferReport
from repro.workload.session import Session
from repro.workload.spec import TransferSpec

__all__ = [
    "collect_site_runs",
    "run_transfer_spec",
]


def run_transfer_spec(
    spec: TransferSpec, seed: Optional[int] = None
) -> TransferReport:
    """Worker entry point: interpret one transfer spec.

    ``seed`` is the sweep engine's derived fallback for specs that
    carry none (injected by :meth:`~repro.parallel.runner.SimTask.seeded`);
    an explicit ``spec.seed`` always wins.
    """
    return Session().run(spec, seed=seed)


def collect_site_runs(site_name: str, seed: int = DEFAULT_SEED) -> list:
    """Collect one Table-1 site's crowd measurement runs.

    Site collection is independent by construction: every RNG stream
    the app and world model draw from is named after the site, so
    collecting sites in parallel and concatenating in site order is
    bit-identical to :meth:`CellVsWifiApp.collect_all`.
    """
    from repro.crowd.app import CellVsWifiApp
    from repro.crowd.world import TABLE1_SITES

    by_name = {site.name: site for site in TABLE1_SITES}
    if site_name not in by_name:
        raise KeyError(f"unknown Table-1 site: {site_name!r}")
    return CellVsWifiApp(seed=seed).collect_site(by_name[site_name])
