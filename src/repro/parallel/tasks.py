"""Worker-side task callables for sweeps.

The one real entry point is :func:`run_transfer_spec`: workers receive
a declarative :class:`~repro.workload.spec.TransferSpec` and interpret
it through a :class:`~repro.workload.session.Session`, returning the
picklable :class:`~repro.workload.report.TransferReport`.

``TransferSummary`` and the argument-tuple wrappers ``tcp_transfer`` /
``mptcp_transfer`` are thin deprecation aliases kept for one PR; new
code should build specs and go through the Session (or
:func:`repro.experiments.common.tcp_task` / ``mptcp_task``, which do).
"""

from typing import Optional

from repro.core.rng import DEFAULT_SEED
from repro.linkem.conditions import LocationCondition
from repro.tcp.config import TcpConfig
from repro.workload.report import TransferReport
from repro.workload.session import Session
from repro.workload.spec import ConditionSpec, TransferSpec, config_overrides

__all__ = [
    "TransferSummary",
    "collect_site_runs",
    "mptcp_transfer",
    "run_transfer_spec",
    "summarize",
    "tcp_transfer",
]

#: Deprecated alias: the canonical snapshot type now lives in
#: :mod:`repro.workload.report`; kept for one PR.
TransferSummary = TransferReport

#: Deprecated alias of :meth:`TransferReport.from_result`; kept for one PR.
summarize = TransferReport.from_result


def run_transfer_spec(
    spec: TransferSpec, seed: Optional[int] = None
) -> TransferReport:
    """Worker entry point: interpret one transfer spec.

    ``seed`` is the sweep engine's derived fallback for specs that
    carry none (injected by :meth:`~repro.parallel.runner.SimTask.seeded`);
    an explicit ``spec.seed`` always wins.
    """
    return Session().run(spec, seed=seed)


def tcp_transfer(
    condition: LocationCondition,
    path: str,
    nbytes: int,
    direction: str = "down",
    cc: str = "cubic",
    seed: int = DEFAULT_SEED,
    deadline_s: float = 240.0,
    config: Optional[TcpConfig] = None,
) -> TransferReport:
    """Deprecated: build a :class:`TransferSpec` instead (kept one PR)."""
    return run_transfer_spec(TransferSpec(
        kind="tcp",
        condition=ConditionSpec.from_condition(condition),
        nbytes=nbytes,
        direction=direction,
        cc=cc,
        path=path,
        seed=seed,
        deadline_s=deadline_s,
        config=config_overrides(config),
    ))


def mptcp_transfer(
    condition: LocationCondition,
    primary: str,
    congestion_control: str,
    nbytes: int,
    direction: str = "down",
    seed: int = DEFAULT_SEED,
    deadline_s: float = 240.0,
    config: Optional[TcpConfig] = None,
) -> TransferReport:
    """Deprecated: build a :class:`TransferSpec` instead (kept one PR)."""
    return run_transfer_spec(TransferSpec(
        kind="mptcp",
        condition=ConditionSpec.from_condition(condition),
        nbytes=nbytes,
        direction=direction,
        cc=congestion_control,
        primary=primary,
        seed=seed,
        deadline_s=deadline_s,
        config=config_overrides(config),
    ))


def collect_site_runs(site_name: str, seed: int = DEFAULT_SEED) -> list:
    """Collect one Table-1 site's crowd measurement runs.

    Site collection is independent by construction: every RNG stream
    the app and world model draw from is named after the site, so
    collecting sites in parallel and concatenating in site order is
    bit-identical to :meth:`CellVsWifiApp.collect_all`.
    """
    from repro.crowd.app import CellVsWifiApp
    from repro.crowd.world import TABLE1_SITES

    by_name = {site.name: site for site in TABLE1_SITES}
    if site_name not in by_name:
        raise KeyError(f"unknown Table-1 site: {site_name!r}")
    return CellVsWifiApp(seed=seed).collect_site(by_name[site_name])
