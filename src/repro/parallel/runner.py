"""The sweep engine: declarative tasks, deterministic shards, workers.

A :class:`SimTask` names a module-level callable (``"pkg.mod:fn"``)
plus keyword arguments; both the arguments and the return value must
be picklable, so tasks can cross a process boundary and live in the
on-disk cache.  :class:`SweepRunner` executes a task list:

1. every task is looked up in the :class:`~repro.parallel.cache.ResultCache`
   (spec hash + code fingerprint);
2. cache misses are sharded **deterministically** — miss ``j`` goes to
   shard ``j % nshards`` — and each shard runs in its own worker
   process (``workers=1`` runs in-process, which keeps debugging and
   profiling trivial);
3. results are reassembled in task-list order, so scheduling jitter
   can never reorder outputs, and written back to the cache.

Because each simulation derives all randomness from seeds carried in
its task spec (see :func:`repro.core.rng.derive_seed`) and shares no
process state, ``workers=N`` is bit-identical to ``workers=1``.
"""

import importlib
import multiprocessing
import os
import time
from concurrent.futures import (
    ProcessPoolExecutor,
    TimeoutError as FuturesTimeout,
    as_completed,
)
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.errors import ConfigurationError, SweepTaskError
from repro.core.rng import DEFAULT_SEED, derive_seed
from repro.obs.manifest import RunManifest
from repro.obs.progress import SweepProgress, progress_enabled_by_env
from repro.obs.trace import active_trace_dir
from repro.parallel.cache import ResultCache, cache_enabled_by_env, spec_key

__all__ = [
    "SimTask",
    "SweepRunner",
    "SweepStats",
    "TaskFailure",
    "WORKERS_ENV",
    "get_default_workers",
    "resolve_workers",
    "set_default_workers",
]

#: Environment variable consulted when no worker count is given.
WORKERS_ENV = "REPRO_WORKERS"

_default_workers: Optional[int] = None


def set_default_workers(workers: Optional[int]) -> None:
    """Set the process-wide default worker count (``None`` resets)."""
    global _default_workers
    if workers is not None and workers < 1:
        raise ConfigurationError(f"workers must be >= 1: {workers}")
    _default_workers = workers


def get_default_workers() -> Optional[int]:
    return _default_workers


def resolve_workers(workers: Optional[int] = None) -> int:
    """Explicit argument > :func:`set_default_workers` > env > 1."""
    if workers is not None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1: {workers}")
        return workers
    if _default_workers is not None:
        return _default_workers
    env = os.environ.get(WORKERS_ENV)
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ConfigurationError(
                f"{WORKERS_ENV} must be an integer: {env!r}"
            )
        if value < 1:
            raise ConfigurationError(f"{WORKERS_ENV} must be >= 1: {value}")
        return value
    return 1


@dataclass(frozen=True)
class SimTask:
    """One unit of sweep work.

    ``fn`` is a ``"module.path:callable"`` reference resolved at
    execution time (inside the worker process), so the spec itself is
    tiny and always picklable.  ``key`` is a stable human-readable
    identity used for per-task seed derivation; it defaults to the
    function path and does not affect cache addressing (the kwargs
    already do).
    """

    fn: str
    kwargs: Dict[str, Any] = field(default_factory=dict)
    key: Optional[str] = None

    def label(self) -> str:
        return self.key if self.key is not None else self.fn

    def resolve(self) -> Callable[..., Any]:
        """Import and return the task callable."""
        if ":" not in self.fn:
            raise ConfigurationError(
                f"task fn must be 'module:callable', got {self.fn!r}"
            )
        module_path, _, attr = self.fn.partition(":")
        module = importlib.import_module(module_path)
        try:
            fn = getattr(module, attr)
        except AttributeError:
            raise ConfigurationError(
                f"module {module_path!r} has no callable {attr!r}"
            )
        if not callable(fn):
            raise ConfigurationError(f"{self.fn!r} is not callable")
        return fn

    def seeded(self, master_seed: int) -> "SimTask":
        """Fill in a derived ``seed`` kwarg when the task lacks one.

        The derivation only depends on the master seed and the task's
        ``key`` — never on shard assignment or worker count — so the
        same sweep always simulates the same randomness.
        """
        if "seed" in self.kwargs:
            return self
        seed = derive_seed(master_seed, f"sweep-task.{self.label()}")
        return SimTask(fn=self.fn, kwargs={**self.kwargs, "seed": seed},
                       key=self.key)


def _run_task(task: SimTask) -> Any:
    return task.resolve()(**task.kwargs)


def _run_task_timed(task: SimTask) -> Tuple[Any, float, int]:
    """Run a task, returning ``(value, wall_time_s, worker_pid)``."""
    started = time.perf_counter()
    value = task.resolve()(**task.kwargs)
    return value, time.perf_counter() - started, os.getpid()


def _run_shard(tasks: List[SimTask]) -> List[Tuple[Any, float, int]]:
    """Worker entry point: run one shard's tasks in order."""
    return [_run_task_timed(task) for task in tasks]


@dataclass(frozen=True)
class TaskFailure:
    """One task that exhausted its retry budget."""

    index: int
    key: str
    error: str
    attempts: int


@dataclass
class SweepStats:
    """Bookkeeping from the last :meth:`SweepRunner.run` call."""

    tasks: int = 0
    cache_hits: int = 0
    executed: int = 0
    workers: int = 1
    elapsed_s: float = 0.0
    #: Tasks that needed more than one attempt but eventually succeeded.
    retried: int = 0
    #: Tasks that exhausted the retry budget (see :class:`TaskFailure`).
    failed: int = 0

    def summary(self) -> str:
        text = (
            f"{self.tasks} tasks, {self.cache_hits} cached, "
            f"{self.executed} run on {self.workers} worker"
            f"{'s' if self.workers != 1 else ''} in {self.elapsed_s:.1f}s"
        )
        if self.retried:
            text += f", {self.retried} retried"
        if self.failed:
            text += f", {self.failed} failed"
        return text


class SweepRunner:
    """Execute a list of :class:`SimTask` with caching and workers.

    Parameters
    ----------
    workers:
        Worker processes; ``None`` resolves via
        :func:`resolve_workers` (default / ``REPRO_WORKERS`` / 1).
        ``1`` executes in-process — no executor, no pickling.
    cache:
        ``None`` uses the default on-disk cache (subject to the
        ``REPRO_CACHE`` env toggle); ``False`` disables caching; a
        :class:`ResultCache` instance is used as given.
    seed:
        Master seed for :meth:`SimTask.seeded` derivation of tasks
        that do not carry an explicit ``seed`` kwarg.
    progress:
        Live progress/ETA on stderr: ``True``/``False``, a configured
        :class:`~repro.obs.progress.SweepProgress`, or ``None`` to
        consult the ``REPRO_PROGRESS`` env toggle.
    max_retries:
        Extra attempts granted to a task after its first failure
        (crash, exception, or timeout), with exponential backoff
        between attempts.  ``0`` fails fast.
    retry_backoff_s:
        Wall-clock sleep before the first retry; doubles per attempt.
    task_timeout_s:
        Wall-clock budget for a single task.  In the sharded phase the
        budget scales with shard length; tasks that blow it are
        re-run individually (where the budget is exact) and their
        hung worker processes are terminated.  ``None`` disables the
        timeout.

    Failure model: a shard whose worker crashes (``BrokenProcessPool``),
    raises, or times out does not abort the sweep — its tasks are
    re-run one-by-one in fresh single-worker pools (falling back to
    in-process execution when no pool can be spawned at all), so one
    poison task costs its own retry budget and nothing else.  Retry
    and failure provenance lands in each task's
    :class:`~repro.obs.manifest.RunManifest` (``extra.attempts``,
    ``extra.failed``, ``extra.error``).  If any task exhausts its
    budget, :meth:`run` raises
    :class:`~repro.core.errors.SweepTaskError` *after* recording
    stats/manifests and caching every healthy result.

    When ``REPRO_TRACE_DIR`` is active, the cache is bypassed for the
    run: a cache hit would skip the simulation and silently produce no
    trace file.

    After each :meth:`run`, ``last_manifests`` holds one
    :class:`~repro.obs.manifest.RunManifest` per task (provenance:
    spec hash, seed, cache hit/miss, wall time, worker pid).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Union[ResultCache, bool, None] = None,
        seed: int = DEFAULT_SEED,
        progress: Union[SweepProgress, bool, None] = None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.05,
        task_timeout_s: Optional[float] = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        if max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0: {max_retries}")
        if retry_backoff_s < 0:
            raise ConfigurationError(
                f"retry_backoff_s must be >= 0: {retry_backoff_s}"
            )
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ConfigurationError(
                f"task_timeout_s must be positive: {task_timeout_s}"
            )
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.task_timeout_s = task_timeout_s
        if cache is None:
            self.cache: Optional[ResultCache] = (
                ResultCache() if cache_enabled_by_env() else None
            )
        elif cache is False:
            self.cache = None
        elif cache is True:
            self.cache = ResultCache()
        else:
            self.cache = cache
        self.seed = seed
        self.progress = progress
        self.last_stats = SweepStats()
        self.last_manifests: List[RunManifest] = []

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[SimTask]) -> List[Any]:
        """Run every task; results are ordered like ``tasks``."""
        started = time.perf_counter()
        tasks = [task.seeded(self.seed) for task in tasks]
        results: List[Any] = [None] * len(tasks)
        walls: List[float] = [0.0] * len(tasks)
        pids: List[int] = [os.getpid()] * len(tasks)

        # Tracing bypasses the cache: a hit would skip the simulation
        # and silently produce no trace file for that task.
        cache = None if active_trace_dir() is not None else self.cache
        progress = self._resolve_progress(len(tasks))
        if progress is not None:
            progress.start()

        keys: List[Optional[str]] = [None] * len(tasks)
        misses: List[int] = []
        hits = 0
        if cache is not None:
            for index, task in enumerate(tasks):
                key = cache.key_for(task.fn, task.kwargs)
                keys[index] = key
                hit, value = cache.get(key)
                if hit:
                    results[index] = value
                    hits += 1
                else:
                    misses.append(index)
            if progress is not None and hits:
                progress.note_cached(hits)
        else:
            misses = list(range(len(tasks)))

        attempts: Dict[int, int] = {}
        failures: Dict[int, TaskFailure] = {}
        if misses:
            self._execute(tasks, misses, results, walls, pids, progress,
                          attempts, failures)
            if cache is not None:
                for index in misses:
                    if index in failures:
                        continue  # never cache a failure placeholder
                    assert keys[index] is not None
                    cache.put(keys[index], results[index])

        if progress is not None:
            progress.finish()

        miss_set = set(misses)
        self.last_manifests = self._build_manifests(
            tasks, miss_set, walls, pids, cache, attempts, failures
        )
        self.last_stats = SweepStats(
            tasks=len(tasks),
            cache_hits=hits,
            executed=len(misses),
            workers=self.workers,
            elapsed_s=time.perf_counter() - started,
            retried=sum(
                1 for index, count in attempts.items()
                if count > 1 and index not in failures
            ),
            failed=len(failures),
        )
        if failures:
            # Stats, manifests, and every healthy result are already
            # recorded (and cached) before the sweep reports failure.
            raise SweepTaskError(
                [failures[index] for index in sorted(failures)],
                results=results,
            )
        return results

    # ------------------------------------------------------------------
    def _resolve_progress(self, total: int) -> Optional[SweepProgress]:
        configured = self.progress
        if isinstance(configured, SweepProgress):
            return configured
        if configured is None:
            configured = progress_enabled_by_env()
        return SweepProgress(total) if configured else None

    def _build_manifests(
        self,
        tasks: List[SimTask],
        miss_set: set,
        walls: List[float],
        pids: List[int],
        cache: Optional[ResultCache],
        attempts: Dict[int, int],
        failures: Dict[int, "TaskFailure"],
    ) -> List[RunManifest]:
        from repro import __version__

        # Pure spec identity (fingerprint=""): never force the
        # all-files code_fingerprint() walk when the cache is off —
        # that one-time cost would eat the disabled-tracing overhead
        # budget.  With the cache on, reuse its already-computed one.
        fingerprint = cache.fingerprint if cache is not None else ""
        manifests = []
        for index, task in enumerate(tasks):
            extra: Dict[str, Any] = {}
            failure = failures.get(index)
            if failure is not None:
                extra = {"attempts": failure.attempts, "failed": True,
                         "error": failure.error}
            elif attempts.get(index, 1) > 1:
                extra = {"attempts": attempts[index], "retried": True}
            manifests.append(RunManifest(
                key=task.label(),
                spec_hash=spec_key(task.fn, task.kwargs, fingerprint=""),
                seed=task.kwargs.get("seed"),
                cache_hit=index not in miss_set,
                wall_time_s=walls[index],
                worker_pid=pids[index],
                workers=self.workers,
                package_version=__version__,
                code_fingerprint=fingerprint,
                extra=extra,
            ))
        return manifests

    # ------------------------------------------------------------------
    def _execute(
        self,
        tasks: List[SimTask],
        misses: List[int],
        results: List[Any],
        walls: List[float],
        pids: List[int],
        progress: Optional[SweepProgress],
        attempts: Dict[int, int],
        failures: Dict[int, "TaskFailure"],
    ) -> None:
        nshards = min(self.workers, len(misses))
        if nshards <= 1:
            for index in misses:
                self._run_with_retries(
                    _run_task_timed, tasks[index], index, attempts,
                    failures, results, walls, pids, progress,
                )
            return
        needs_isolation, shard_errors = self._execute_sharded(
            tasks, misses, nshards, results, walls, pids, progress,
        )
        # A broken shard does not abort the sweep: every task of every
        # failed shard is retried one-by-one in a fresh single-worker
        # pool, so only the actual poison task can exhaust its budget.
        for index in needs_isolation:
            # The failed shard run counts as an attempt, but never the
            # last one: every casualty gets at least one isolated
            # re-run, so an innocent shard-mate of a poison task
            # survives even with max_retries=0.
            attempts[index] = min(attempts.get(index, 0) + 1,
                                  self.max_retries)
            self._run_with_retries(
                self._run_one_isolated, tasks[index], index, attempts,
                failures, results, walls, pids, progress,
                initial_error=shard_errors.get(index),
            )

    def _execute_sharded(
        self,
        tasks: List[SimTask],
        misses: List[int],
        nshards: int,
        results: List[Any],
        walls: List[float],
        pids: List[int],
        progress: Optional[SweepProgress],
    ) -> Tuple[List[int], Dict[int, str]]:
        """Run the deterministic shard phase; report casualties.

        Returns ``(needs_isolation, shard_errors)``: miss indices whose
        shard crashed, raised, or timed out (to re-run individually)
        and the error text observed per index.
        """
        # Deterministic sharding: miss j -> shard j % nshards.  The
        # assignment depends only on task order and worker count, and
        # results are reassembled by original index, so scheduling
        # jitter cannot reorder (or change) anything.
        shards = [misses[offset::nshards] for offset in range(nshards)]
        needs_isolation: List[int] = []
        shard_errors: Dict[int, str] = {}
        try:
            pool = ProcessPoolExecutor(max_workers=nshards,
                                       mp_context=self._mp_context())
        except (OSError, ValueError) as exc:
            # No pool at all (fd/process limits): degrade to serial.
            error = f"{type(exc).__name__}: {exc}"
            for index in misses:
                shard_errors[index] = error
            return list(misses), shard_errors
        hung = False
        try:
            futures = {
                pool.submit(_run_shard, [tasks[index] for index in shard]):
                shard
                for shard in shards
            }
            # The shard phase deadline scales with the longest shard
            # (tasks run sequentially inside a shard) plus one extra
            # task budget of slack; the per-task budget is enforced
            # exactly during isolation re-runs.
            timeout = None
            if self.task_timeout_s is not None:
                longest = max(len(shard) for shard in shards)
                timeout = self.task_timeout_s * (longest + 1)
            done = set()
            try:
                # Completion order only affects progress display;
                # results are keyed back by original index.
                for future in as_completed(futures, timeout=timeout):
                    done.add(future)
                    self._harvest_shard(
                        future, futures[future], results, walls, pids,
                        progress, needs_isolation, shard_errors,
                    )
            except FuturesTimeout:
                hung = True
                for future, shard in futures.items():
                    if future in done:
                        continue
                    if future.done():
                        self._harvest_shard(
                            future, shard, results, walls, pids,
                            progress, needs_isolation, shard_errors,
                        )
                        continue
                    future.cancel()
                    message = (
                        f"shard timed out after {timeout:g}s "
                        f"(task_timeout_s={self.task_timeout_s:g})"
                    )
                    for index in shard:
                        shard_errors[index] = message
                    needs_isolation.extend(shard)
        finally:
            if hung:
                # Cancelled futures may already be running; reclaim
                # their workers so shutdown cannot block forever.
                self._terminate_pool(pool)
            pool.shutdown(wait=not hung, cancel_futures=True)
        return sorted(needs_isolation), shard_errors

    @staticmethod
    def _harvest_shard(
        future: Any,
        shard: List[int],
        results: List[Any],
        walls: List[float],
        pids: List[int],
        progress: Optional[SweepProgress],
        needs_isolation: List[int],
        shard_errors: Dict[int, str],
    ) -> None:
        try:
            values = future.result(timeout=0)
        except Exception as exc:  # BrokenProcessPool, task exception, ...
            # BrokenProcessPool poisons every pending future of the
            # pool, so innocent shards land here too — their isolation
            # re-run succeeds on the first retry.
            error = f"{type(exc).__name__}: {exc}"
            for index in shard:
                shard_errors[index] = error
            needs_isolation.extend(shard)
            return
        for index, (value, wall, pid) in zip(shard, values):
            results[index] = value
            walls[index] = wall
            pids[index] = pid
        if progress is not None:
            progress.advance(len(shard))

    def _run_with_retries(
        self,
        run_one: Callable[[SimTask], Tuple[Any, float, int]],
        task: SimTask,
        index: int,
        attempts: Dict[int, int],
        failures: Dict[int, "TaskFailure"],
        results: List[Any],
        walls: List[float],
        pids: List[int],
        progress: Optional[SweepProgress],
        initial_error: Optional[str] = None,
    ) -> None:
        """Drive one task to success or budget exhaustion."""
        budget = self.max_retries + 1
        delay = self.retry_backoff_s
        error_text = initial_error or "unknown error"
        while attempts.get(index, 0) < budget:
            attempts[index] = attempts.get(index, 0) + 1
            try:
                value, wall, pid = run_one(task)
            except Exception as exc:
                error_text = f"{type(exc).__name__}: {exc}"
                if attempts[index] < budget and delay > 0:
                    time.sleep(delay)
                    delay *= 2
                continue
            results[index] = value
            walls[index] = wall
            pids[index] = pid
            if progress is not None:
                progress.advance()
            return
        failures[index] = TaskFailure(
            index=index, key=task.label(), error=error_text,
            attempts=attempts.get(index, 0),
        )
        if progress is not None:
            progress.advance()

    def _run_one_isolated(self, task: SimTask) -> Tuple[Any, float, int]:
        """Run one task in its own single-worker pool.

        A crash (``BrokenProcessPool``) or timeout is confined to this
        task; a hung worker is terminated.  If no pool can be spawned
        at all, the task runs in-process — losing crash isolation but
        keeping the sweep alive.
        """
        try:
            pool = ProcessPoolExecutor(max_workers=1,
                                       mp_context=self._mp_context())
        except (OSError, ValueError):
            return _run_task_timed(task)
        hung = False
        try:
            future = pool.submit(_run_task_timed, task)
            try:
                return future.result(timeout=self.task_timeout_s)
            except FuturesTimeout:
                hung = True
                future.cancel()
                raise FuturesTimeout(
                    f"task {task.label()!r} exceeded "
                    f"task_timeout_s={self.task_timeout_s:g}s"
                )
        finally:
            if hung:
                self._terminate_pool(pool)
            pool.shutdown(wait=not hung, cancel_futures=True)

    @staticmethod
    def _terminate_pool(pool: ProcessPoolExecutor) -> None:
        """Kill worker processes of a pool with hung tasks."""
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:
                pass

    @staticmethod
    def _mp_context():
        """Prefer ``fork`` so workers inherit ``sys.path`` untouched."""
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()
