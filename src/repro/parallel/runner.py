"""The sweep engine facade: declarative tasks, pluggable executors.

:class:`SweepRunner` keeps the surface every experiment and test has
always used — ``SweepRunner(workers=...).run(tasks)`` — while the
machinery behind it now lives in three separated layers:

* :mod:`repro.parallel.task` — :class:`SimTask` specs and the shared
  execution helpers;
* :mod:`repro.parallel.executors` — *where* tasks run: in-process,
  local process pool, or remote socket workers
  (``--executor``/``REPRO_EXECUTOR``);
* :mod:`repro.parallel.coordinator` — *what* runs: cache lookups with
  single-flight, deterministic sharding, retry/backoff, poison-task
  isolation, timeouts, progress, and manifest provenance.

Because each simulation derives all randomness from seeds carried in
its task spec (see :func:`repro.core.rng.derive_seed`) and shares no
process state, any executor at any worker count is bit-identical to
``workers=1`` in-process execution.
"""

from typing import Any, List, Optional, Sequence, Union

from repro.obs.manifest import RunManifest
from repro.obs.progress import SweepProgress
from repro.parallel.cache import ResultCache, cache_enabled_by_env
from repro.parallel.coordinator import ResultHook, SweepCoordinator
from repro.parallel.executors import Executor
from repro.parallel.task import (
    SimTask,
    SweepStats,
    TaskFailure,
    WORKERS_ENV,
    get_default_workers,
    resolve_workers,
    run_shard as _run_shard,          # noqa: F401  (compat re-export)
    run_task_timed as _run_task_timed,  # noqa: F401  (compat re-export)
    set_default_workers,
)

__all__ = [
    "SimTask",
    "SweepRunner",
    "SweepStats",
    "TaskFailure",
    "WORKERS_ENV",
    "get_default_workers",
    "resolve_workers",
    "set_default_workers",
]


class SweepRunner:
    """Execute a list of :class:`SimTask` with caching and workers.

    Parameters
    ----------
    workers:
        Worker processes; ``None`` resolves via
        :func:`resolve_workers` (default / ``REPRO_WORKERS`` / 1).
        ``1`` executes in-process on the local backends — no executor
        round-trip, no pickling.
    cache:
        ``None`` uses the default on-disk cache (subject to the
        ``REPRO_CACHE`` env toggle); ``False`` disables caching; a
        :class:`ResultCache` instance is used as given.  The cache is
        safe to share between concurrent runners: atomic writes plus
        per-key single-flight mean no key is ever computed twice.
    seed:
        Master seed for :meth:`SimTask.seeded` derivation of tasks
        that do not carry an explicit ``seed`` kwarg.
    progress:
        Live progress/ETA on stderr: ``True``/``False``, a configured
        :class:`~repro.obs.progress.SweepProgress`, or ``None`` to
        consult the ``REPRO_PROGRESS`` env toggle.
    max_retries:
        Extra attempts granted to a task after its first failure
        (crash, exception, or timeout), with exponential backoff
        between attempts.  ``0`` fails fast.
    retry_backoff_s:
        Wall-clock sleep before the first retry; doubles per attempt.
    task_timeout_s:
        Wall-clock budget for a single task.  In the sharded phase the
        budget scales with shard length; tasks that blow it are
        re-run individually (where the budget is exact) and their
        hung worker processes are terminated.  ``None`` disables the
        timeout.
    executor:
        Backend selection: an :class:`~repro.parallel.executors.Executor`
        instance, a spec string (``"inprocess"``, ``"process"``,
        ``"socket:HOST:PORT[,...]"``), or ``None`` to resolve via
        :func:`~repro.parallel.executors.set_default_executor` /
        ``REPRO_EXECUTOR`` / the ``process`` default.
    on_result:
        Streaming hook ``(index, task, value, cached)`` invoked the
        moment each task resolves (cache hit, fresh execution, or
        single-flight wait), in completion order.  Presentation only —
        it must not raise and cannot influence results.

    Failure model: a shard whose worker crashes, raises, or times out
    does not abort the sweep — its tasks are re-run one-by-one with
    the backend's best isolation, so one poison task costs its own
    retry budget and nothing else.  Retry and failure provenance lands
    in each task's :class:`~repro.obs.manifest.RunManifest`
    (``extra.attempts``, ``extra.failed``, ``extra.error``).  If any
    task exhausts its budget, :meth:`run` raises
    :class:`~repro.core.errors.SweepTaskError` *after* recording
    stats/manifests and caching every healthy result.

    When ``REPRO_TRACE_DIR`` is active, the cache is bypassed for the
    run: a cache hit would skip the simulation and silently produce no
    trace file.

    After each :meth:`run`, ``last_manifests`` holds one
    :class:`~repro.obs.manifest.RunManifest` per task (provenance:
    spec hash, seed, cache hit/miss, wall time, worker pid).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Union[ResultCache, bool, None] = None,
        seed: Optional[int] = None,
        progress: Union[SweepProgress, bool, None] = None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.05,
        task_timeout_s: Optional[float] = None,
        executor: Union[Executor, str, None] = None,
        on_result: Optional[ResultHook] = None,
    ) -> None:
        from repro.core.rng import DEFAULT_SEED

        self.workers = resolve_workers(workers)
        if cache is None:
            resolved_cache: Optional[ResultCache] = (
                ResultCache() if cache_enabled_by_env() else None
            )
        elif cache is False:
            resolved_cache = None
        elif cache is True:
            resolved_cache = ResultCache()
        else:
            resolved_cache = cache
        self.cache = resolved_cache
        self.seed = seed if seed is not None else DEFAULT_SEED
        self.progress = progress
        self._coordinator = SweepCoordinator(
            executor=executor,
            workers=self.workers,
            cache=resolved_cache,
            seed=self.seed,
            progress=progress,
            max_retries=max_retries,
            retry_backoff_s=retry_backoff_s,
            task_timeout_s=task_timeout_s,
            on_result=on_result,
        )

    # -- attributes older call sites read directly ---------------------
    @property
    def max_retries(self) -> int:
        return self._coordinator.max_retries

    @property
    def retry_backoff_s(self) -> float:
        return self._coordinator.retry_backoff_s

    @property
    def task_timeout_s(self) -> Optional[float]:
        return self._coordinator.task_timeout_s

    @property
    def executor(self) -> Executor:
        return self._coordinator.executor

    @property
    def last_stats(self) -> SweepStats:
        return self._coordinator.last_stats

    @property
    def last_manifests(self) -> List[RunManifest]:
        return self._coordinator.last_manifests

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[SimTask]) -> List[Any]:
        """Run every task; results are ordered like ``tasks``."""
        return self._coordinator.run(tasks)
