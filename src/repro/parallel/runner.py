"""The sweep engine: declarative tasks, deterministic shards, workers.

A :class:`SimTask` names a module-level callable (``"pkg.mod:fn"``)
plus keyword arguments; both the arguments and the return value must
be picklable, so tasks can cross a process boundary and live in the
on-disk cache.  :class:`SweepRunner` executes a task list:

1. every task is looked up in the :class:`~repro.parallel.cache.ResultCache`
   (spec hash + code fingerprint);
2. cache misses are sharded **deterministically** — miss ``j`` goes to
   shard ``j % nshards`` — and each shard runs in its own worker
   process (``workers=1`` runs in-process, which keeps debugging and
   profiling trivial);
3. results are reassembled in task-list order, so scheduling jitter
   can never reorder outputs, and written back to the cache.

Because each simulation derives all randomness from seeds carried in
its task spec (see :func:`repro.core.rng.derive_seed`) and shares no
process state, ``workers=N`` is bit-identical to ``workers=1``.
"""

import importlib
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.errors import ConfigurationError
from repro.core.rng import DEFAULT_SEED, derive_seed
from repro.obs.manifest import RunManifest
from repro.obs.progress import SweepProgress, progress_enabled_by_env
from repro.obs.trace import active_trace_dir
from repro.parallel.cache import ResultCache, cache_enabled_by_env, spec_key

__all__ = [
    "SimTask",
    "SweepRunner",
    "SweepStats",
    "WORKERS_ENV",
    "get_default_workers",
    "resolve_workers",
    "set_default_workers",
]

#: Environment variable consulted when no worker count is given.
WORKERS_ENV = "REPRO_WORKERS"

_default_workers: Optional[int] = None


def set_default_workers(workers: Optional[int]) -> None:
    """Set the process-wide default worker count (``None`` resets)."""
    global _default_workers
    if workers is not None and workers < 1:
        raise ConfigurationError(f"workers must be >= 1: {workers}")
    _default_workers = workers


def get_default_workers() -> Optional[int]:
    return _default_workers


def resolve_workers(workers: Optional[int] = None) -> int:
    """Explicit argument > :func:`set_default_workers` > env > 1."""
    if workers is not None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1: {workers}")
        return workers
    if _default_workers is not None:
        return _default_workers
    env = os.environ.get(WORKERS_ENV)
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ConfigurationError(
                f"{WORKERS_ENV} must be an integer: {env!r}"
            )
        if value < 1:
            raise ConfigurationError(f"{WORKERS_ENV} must be >= 1: {value}")
        return value
    return 1


@dataclass(frozen=True)
class SimTask:
    """One unit of sweep work.

    ``fn`` is a ``"module.path:callable"`` reference resolved at
    execution time (inside the worker process), so the spec itself is
    tiny and always picklable.  ``key`` is a stable human-readable
    identity used for per-task seed derivation; it defaults to the
    function path and does not affect cache addressing (the kwargs
    already do).
    """

    fn: str
    kwargs: Dict[str, Any] = field(default_factory=dict)
    key: Optional[str] = None

    def label(self) -> str:
        return self.key if self.key is not None else self.fn

    def resolve(self) -> Callable[..., Any]:
        """Import and return the task callable."""
        if ":" not in self.fn:
            raise ConfigurationError(
                f"task fn must be 'module:callable', got {self.fn!r}"
            )
        module_path, _, attr = self.fn.partition(":")
        module = importlib.import_module(module_path)
        try:
            fn = getattr(module, attr)
        except AttributeError:
            raise ConfigurationError(
                f"module {module_path!r} has no callable {attr!r}"
            )
        if not callable(fn):
            raise ConfigurationError(f"{self.fn!r} is not callable")
        return fn

    def seeded(self, master_seed: int) -> "SimTask":
        """Fill in a derived ``seed`` kwarg when the task lacks one.

        The derivation only depends on the master seed and the task's
        ``key`` — never on shard assignment or worker count — so the
        same sweep always simulates the same randomness.
        """
        if "seed" in self.kwargs:
            return self
        seed = derive_seed(master_seed, f"sweep-task.{self.label()}")
        return SimTask(fn=self.fn, kwargs={**self.kwargs, "seed": seed},
                       key=self.key)


def _run_task(task: SimTask) -> Any:
    return task.resolve()(**task.kwargs)


def _run_task_timed(task: SimTask) -> Tuple[Any, float, int]:
    """Run a task, returning ``(value, wall_time_s, worker_pid)``."""
    started = time.perf_counter()
    value = task.resolve()(**task.kwargs)
    return value, time.perf_counter() - started, os.getpid()


def _run_shard(tasks: List[SimTask]) -> List[Tuple[Any, float, int]]:
    """Worker entry point: run one shard's tasks in order."""
    return [_run_task_timed(task) for task in tasks]


@dataclass
class SweepStats:
    """Bookkeeping from the last :meth:`SweepRunner.run` call."""

    tasks: int = 0
    cache_hits: int = 0
    executed: int = 0
    workers: int = 1
    elapsed_s: float = 0.0

    def summary(self) -> str:
        return (
            f"{self.tasks} tasks, {self.cache_hits} cached, "
            f"{self.executed} run on {self.workers} worker"
            f"{'s' if self.workers != 1 else ''} in {self.elapsed_s:.1f}s"
        )


class SweepRunner:
    """Execute a list of :class:`SimTask` with caching and workers.

    Parameters
    ----------
    workers:
        Worker processes; ``None`` resolves via
        :func:`resolve_workers` (default / ``REPRO_WORKERS`` / 1).
        ``1`` executes in-process — no executor, no pickling.
    cache:
        ``None`` uses the default on-disk cache (subject to the
        ``REPRO_CACHE`` env toggle); ``False`` disables caching; a
        :class:`ResultCache` instance is used as given.
    seed:
        Master seed for :meth:`SimTask.seeded` derivation of tasks
        that do not carry an explicit ``seed`` kwarg.
    progress:
        Live progress/ETA on stderr: ``True``/``False``, a configured
        :class:`~repro.obs.progress.SweepProgress`, or ``None`` to
        consult the ``REPRO_PROGRESS`` env toggle.

    When ``REPRO_TRACE_DIR`` is active, the cache is bypassed for the
    run: a cache hit would skip the simulation and silently produce no
    trace file.

    After each :meth:`run`, ``last_manifests`` holds one
    :class:`~repro.obs.manifest.RunManifest` per task (provenance:
    spec hash, seed, cache hit/miss, wall time, worker pid).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Union[ResultCache, bool, None] = None,
        seed: int = DEFAULT_SEED,
        progress: Union[SweepProgress, bool, None] = None,
    ) -> None:
        self.workers = resolve_workers(workers)
        if cache is None:
            self.cache: Optional[ResultCache] = (
                ResultCache() if cache_enabled_by_env() else None
            )
        elif cache is False:
            self.cache = None
        elif cache is True:
            self.cache = ResultCache()
        else:
            self.cache = cache
        self.seed = seed
        self.progress = progress
        self.last_stats = SweepStats()
        self.last_manifests: List[RunManifest] = []

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[SimTask]) -> List[Any]:
        """Run every task; results are ordered like ``tasks``."""
        started = time.perf_counter()
        tasks = [task.seeded(self.seed) for task in tasks]
        results: List[Any] = [None] * len(tasks)
        walls: List[float] = [0.0] * len(tasks)
        pids: List[int] = [os.getpid()] * len(tasks)

        # Tracing bypasses the cache: a hit would skip the simulation
        # and silently produce no trace file for that task.
        cache = None if active_trace_dir() is not None else self.cache
        progress = self._resolve_progress(len(tasks))
        if progress is not None:
            progress.start()

        keys: List[Optional[str]] = [None] * len(tasks)
        misses: List[int] = []
        hits = 0
        if cache is not None:
            for index, task in enumerate(tasks):
                key = cache.key_for(task.fn, task.kwargs)
                keys[index] = key
                hit, value = cache.get(key)
                if hit:
                    results[index] = value
                    hits += 1
                else:
                    misses.append(index)
            if progress is not None and hits:
                progress.note_cached(hits)
        else:
            misses = list(range(len(tasks)))

        if misses:
            self._execute(tasks, misses, results, walls, pids, progress)
            if cache is not None:
                for index in misses:
                    assert keys[index] is not None
                    cache.put(keys[index], results[index])

        if progress is not None:
            progress.finish()

        miss_set = set(misses)
        self.last_manifests = self._build_manifests(
            tasks, miss_set, walls, pids, cache
        )
        self.last_stats = SweepStats(
            tasks=len(tasks),
            cache_hits=hits,
            executed=len(misses),
            workers=self.workers,
            elapsed_s=time.perf_counter() - started,
        )
        return results

    # ------------------------------------------------------------------
    def _resolve_progress(self, total: int) -> Optional[SweepProgress]:
        configured = self.progress
        if isinstance(configured, SweepProgress):
            return configured
        if configured is None:
            configured = progress_enabled_by_env()
        return SweepProgress(total) if configured else None

    def _build_manifests(
        self,
        tasks: List[SimTask],
        miss_set: set,
        walls: List[float],
        pids: List[int],
        cache: Optional[ResultCache],
    ) -> List[RunManifest]:
        from repro import __version__

        # Pure spec identity (fingerprint=""): never force the
        # all-files code_fingerprint() walk when the cache is off —
        # that one-time cost would eat the disabled-tracing overhead
        # budget.  With the cache on, reuse its already-computed one.
        fingerprint = cache.fingerprint if cache is not None else ""
        return [
            RunManifest(
                key=task.label(),
                spec_hash=spec_key(task.fn, task.kwargs, fingerprint=""),
                seed=task.kwargs.get("seed"),
                cache_hit=index not in miss_set,
                wall_time_s=walls[index],
                worker_pid=pids[index],
                workers=self.workers,
                package_version=__version__,
                code_fingerprint=fingerprint,
            )
            for index, task in enumerate(tasks)
        ]

    # ------------------------------------------------------------------
    def _execute(
        self,
        tasks: List[SimTask],
        misses: List[int],
        results: List[Any],
        walls: List[float],
        pids: List[int],
        progress: Optional[SweepProgress],
    ) -> None:
        nshards = min(self.workers, len(misses))
        if nshards <= 1:
            for index in misses:
                value, wall, pid = _run_task_timed(tasks[index])
                results[index] = value
                walls[index] = wall
                pids[index] = pid
                if progress is not None:
                    progress.advance()
            return
        # Deterministic sharding: miss j -> shard j % nshards.  The
        # assignment depends only on task order and worker count, and
        # results are reassembled by original index, so scheduling
        # jitter cannot reorder (or change) anything.
        shards = [misses[offset::nshards] for offset in range(nshards)]
        context = self._mp_context()
        with ProcessPoolExecutor(max_workers=nshards,
                                 mp_context=context) as pool:
            futures = {
                pool.submit(_run_shard, [tasks[index] for index in shard]):
                shard
                for shard in shards
            }
            # Completion order only affects progress display; results
            # are keyed back by original index.
            for future in as_completed(futures):
                shard = futures[future]
                for index, (value, wall, pid) in zip(shard, future.result()):
                    results[index] = value
                    walls[index] = wall
                    pids[index] = pid
                if progress is not None:
                    progress.advance(len(shard))

    @staticmethod
    def _mp_context():
        """Prefer ``fork`` so workers inherit ``sys.path`` untouched."""
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()
