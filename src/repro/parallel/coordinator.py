"""The executor-agnostic sweep coordinator.

:class:`SweepCoordinator` owns everything about a sweep that is *not*
"where code runs": deterministic seeding and sharding, result-cache
lookups with per-key single-flight, per-task retry/backoff budgets,
poison-task isolation, timeout policy, progress reporting, and
:class:`~repro.obs.manifest.RunManifest` provenance.  Backends
(:mod:`repro.parallel.executors`) only execute shards — so every
backend, including remote socket workers, inherits the same hardening
with zero per-backend code.

Execution plan for one ``run(tasks)``:

1. every task gets its derived seed, then its cache key;
2. hits resolve immediately; each miss is either *owned* (this runner
   won the per-key single-flight lock and will compute it) or
   *awaited* (another runner sharing the cache directory is already
   computing it);
3. owned misses shard deterministically — miss ``j`` goes to shard
   ``j % nshards`` — and run on the executor; each result is published
   to the cache (and its lock released) the moment it lands, so
   concurrent runners unblock as early as possible;
4. failed shards degrade to per-task isolation re-runs through
   ``executor.run_one`` under the retry budget;
5. awaited keys are collected (or taken over if their owner vanished);
6. manifests and stats are recorded; if any task exhausted its budget
   a :class:`~repro.core.errors.SweepTaskError` carries the healthy
   results out.

Results are reassembled by task index, so executor choice, worker
count, shard scheduling, and single-flight interleaving can never
change (or reorder) the output — only the wall-clock.
"""

import contextlib
import os
import time
import warnings
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.errors import (
    ConfigurationError,
    ExecutorError,
    SweepTaskError,
)
from repro.core.rng import DEFAULT_SEED
from repro.obs.manifest import RunManifest
from repro.obs.progress import SweepProgress, progress_enabled_by_env
from repro.obs.telemetry import active_bus
from repro.obs.trace import active_trace_dir
from repro.parallel.cache import ResultCache, spec_key
from repro.parallel.executors import (
    Executor,
    LocalPoolExecutor,
    make_executor,
)
from repro.parallel.task import (
    SimTask,
    SweepStats,
    TaskFailure,
    run_task_timed,
)

__all__ = ["SweepCoordinator"]

#: Fallback single-flight wait budget when no task timeout bounds it.
DEFAULT_FLIGHT_TIMEOUT_S = 600.0

#: ``on_result`` callback type: ``(index, task, value, cached)``.
ResultHook = Callable[[int, SimTask, Any, bool], None]


class _RunState:
    """Mutable bookkeeping for one ``run()`` call."""

    def __init__(self, tasks: List[SimTask]) -> None:
        self.tasks = tasks
        self.results: List[Any] = [None] * len(tasks)
        self.walls: List[float] = [0.0] * len(tasks)
        self.pids: List[int] = [os.getpid()] * len(tasks)
        self.keys: List[Optional[str]] = [None] * len(tasks)
        self.attempts: Dict[int, int] = {}
        self.failures: Dict[int, TaskFailure] = {}
        self.executed: Set[int] = set()
        self.flight_waits: Set[int] = set()
        self.locked: Set[int] = set()
        self.hits = 0


class SweepCoordinator:
    """Drive a task list to completion on a pluggable executor."""

    def __init__(
        self,
        executor: Optional[Executor] = None,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        seed: int = DEFAULT_SEED,
        progress=None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.05,
        task_timeout_s: Optional[float] = None,
        on_result: Optional[ResultHook] = None,
    ) -> None:
        if max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0: {max_retries}")
        if retry_backoff_s < 0:
            raise ConfigurationError(
                f"retry_backoff_s must be >= 0: {retry_backoff_s}"
            )
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ConfigurationError(
                f"task_timeout_s must be positive: {task_timeout_s}"
            )
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1: {workers}")
        self.executor = make_executor(executor)
        self.workers = workers
        self.cache = cache
        self.seed = seed
        self.progress = progress
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.task_timeout_s = task_timeout_s
        self.on_result = on_result
        self.last_stats = SweepStats()
        self.last_manifests: List[RunManifest] = []
        # Telemetry is resolved per run() so a bus enabled later is
        # still seen; None keeps every publish site zero-cost.
        self._bus = None
        # Full-fleet loss degrades the current run to this local pool
        # (created on first use); reset per run so a recovered fleet
        # is used again on the next sweep.
        self._fallback: Optional[LocalPoolExecutor] = None
        self._degraded = False

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[SimTask]) -> List[Any]:
        """Run every task; results are ordered like ``tasks``."""
        started = time.perf_counter()
        seeded = [task.seeded(self.seed) for task in tasks]
        state = _RunState(seeded)
        self._degraded = False
        self._bus = active_bus()
        if self._bus is not None:
            self._bus.count("sweep.runs")
            self._bus.record(
                "sweep.tasks_total",
                self._bus.registry.gauge("sweep.tasks_total").value
                + len(seeded),
            )

        # Tracing bypasses the cache: a hit would skip the simulation
        # and silently produce no trace file.
        cache = None if active_trace_dir() is not None else self.cache
        progress = self._resolve_progress(len(seeded))
        if progress is not None:
            progress.start()

        owned, awaited = self._scan_cache(state, cache, progress)
        try:
            if owned:
                with self._span("coordinator.dispatch"):
                    self._execute(state, owned, cache, progress)
            if awaited:
                self._resolve_awaited(state, awaited, cache, progress)
        finally:
            # Locks of tasks that never published (poison tasks, an
            # executor blow-up) must not strand concurrent runners.
            if cache is not None:
                for index in sorted(state.locked):
                    cache.release(state.keys[index])
                state.locked.clear()

        if progress is not None:
            progress.finish()

        self.last_manifests = self._build_manifests(state, cache)
        self.last_stats = SweepStats(
            tasks=len(seeded),
            cache_hits=state.hits,
            executed=len(state.executed) + len(
                set(state.failures) - state.executed
            ),
            workers=self.workers,
            elapsed_s=time.perf_counter() - started,
            retried=sum(
                1 for index, count in state.attempts.items()
                if count > 1 and index not in state.failures
            ),
            failed=len(state.failures),
            executor=self.executor.name,
            flight_waits=len(state.flight_waits),
        )
        if state.failures:
            # Stats, manifests, and every healthy result are already
            # recorded (and cached) before the sweep reports failure.
            raise SweepTaskError(
                [state.failures[index] for index in sorted(state.failures)],
                results=state.results,
            )
        return state.results

    # ------------------------------------------------------------------
    # Cache scan: hits, owned misses, awaited misses
    # ------------------------------------------------------------------
    def _scan_cache(
        self,
        state: _RunState,
        cache: Optional[ResultCache],
        progress: Optional[SweepProgress],
    ) -> Tuple[List[int], List[int]]:
        if cache is None:
            return list(range(len(state.tasks))), []
        owned: List[int] = []
        awaited: List[int] = []
        for index, task in enumerate(state.tasks):
            key = cache.key_for(task.fn, task.kwargs)
            state.keys[index] = key
            if self._try_hit(state, cache, index, key):
                continue
            if cache.acquire(key):
                # Re-check: a concurrent runner may have published
                # between our miss and our lock grab.
                if self._try_hit(state, cache, index, key):
                    cache.release(key)
                    continue
                state.locked.add(index)
                owned.append(index)
            else:
                awaited.append(index)
        if progress is not None and state.hits:
            progress.note_cached(state.hits)
        return owned, awaited

    def _try_hit(self, state: _RunState, cache: ResultCache,
                 index: int, key: str) -> bool:
        with self._span("cache.get"):
            hit, value = cache.get(key)
        if not hit:
            return False
        state.results[index] = value
        state.hits += 1
        self._emit(state, index, value, cached=True)
        return True

    # ------------------------------------------------------------------
    # Execution: deterministic shards + isolation re-runs
    # ------------------------------------------------------------------
    def _execute(
        self,
        state: _RunState,
        misses: List[int],
        cache: Optional[ResultCache],
        progress: Optional[SweepProgress],
    ) -> None:
        nshards = self.executor.shard_count(self.workers, len(misses))
        if nshards <= 1 and getattr(self.executor, "inline_when_serial",
                                    True):
            # One shard on an inline-capable backend: run in-process
            # with per-task retries — no pool, no pickling (the
            # ``workers=1`` debugging contract).
            for index in misses:
                self._run_with_retries(
                    state, index, run_task_timed, cache, progress,
                )
            return
        needs_isolation: List[int] = []
        shard_errors: Dict[int, str] = {}
        try:
            self._run_sharded(self.executor, state, misses, nshards,
                              cache, progress, needs_isolation, shard_errors)
        except ExecutorError as exc:
            # Full fleet loss (zero reachable workers, or every
            # connection died mid-sweep).  Degrade this run to the
            # local process pool rather than failing a sweep whose
            # tasks are all still perfectly runnable here.
            self._degrade(exc)
            unresolved = [
                index for index in misses
                if index not in state.executed
                and index not in state.failures
                and index not in set(needs_isolation)
            ]
            if unresolved:
                fallback = self._fallback
                nshards = fallback.shard_count(self.workers,
                                               len(unresolved))
                if nshards <= 1:
                    for index in unresolved:
                        self._run_with_retries(
                            state, index, run_task_timed, cache, progress,
                        )
                else:
                    self._run_sharded(fallback, state, unresolved, nshards,
                                      cache, progress, needs_isolation,
                                      shard_errors)
        for index in sorted(needs_isolation):
            # The failed shard run counts as an attempt, but never the
            # last one: every casualty gets at least one isolated
            # re-run, so an innocent shard-mate of a poison task
            # survives even with max_retries=0.
            state.attempts[index] = min(
                state.attempts.get(index, 0) + 1, self.max_retries
            )
            self._run_with_retries(
                state, index, self._isolated_run_one, cache, progress,
                initial_error=shard_errors.get(index),
            )

    def _run_sharded(
        self,
        executor: Executor,
        state: _RunState,
        misses: List[int],
        nshards: int,
        cache: Optional[ResultCache],
        progress: Optional[SweepProgress],
        needs_isolation: List[int],
        shard_errors: Dict[int, str],
    ) -> None:
        """Run ``misses`` as shards on ``executor``, resolving results.

        Deterministic sharding: miss j -> shard j % nshards.  The
        assignment depends only on task order and shard count, and
        results are reassembled by original index, so scheduling
        jitter cannot reorder (or change) anything.
        """
        shard_indices = [misses[offset::nshards] for offset in range(nshards)]
        shard_tasks = [[state.tasks[index] for index in shard]
                       for shard in shard_indices]
        dispatched = time.perf_counter()
        for shard_id, outcome in executor.run_shards(
            shard_tasks, self.task_timeout_s
        ):
            if self._bus is not None:
                # Executor round-trip: dispatch to this shard's
                # arrival (completion-order latency profile).
                self._bus.observe(
                    "executor.roundtrip_s",
                    time.perf_counter() - dispatched,
                    executor=executor.name,
                )
            shard = shard_indices[shard_id]
            if outcome.ok:
                for index, (value, wall, pid) in zip(shard, outcome.values):
                    self._resolve_executed(state, index, value, wall, pid,
                                           cache)
                if progress is not None:
                    progress.advance(len(shard))
            else:
                # A broken shard does not abort the sweep: every task
                # of every failed shard is retried one-by-one in
                # isolation, so only the actual poison task can
                # exhaust its budget.
                for index in shard:
                    shard_errors[index] = outcome.error
                needs_isolation.extend(shard)

    def _degrade(self, exc: ExecutorError) -> None:
        """Switch the rest of this run to the local process pool."""
        self._degraded = True
        if self._fallback is None:
            self._fallback = LocalPoolExecutor()
        warnings.warn(
            f"{self.executor.name} executor unavailable ({exc}); "
            f"degrading this sweep to the local process executor",
            RuntimeWarning,
            stacklevel=4,
        )
        if self._bus is not None:
            self._bus.count("sweep.degraded")

    def _isolated_run_one(self, task: SimTask) -> Tuple[Any, float, int]:
        executor = self._fallback if self._degraded else self.executor
        return executor.run_one(task, self.task_timeout_s)

    def _run_with_retries(
        self,
        state: _RunState,
        index: int,
        run_one: Callable[[SimTask], Tuple[Any, float, int]],
        cache: Optional[ResultCache],
        progress: Optional[SweepProgress],
        initial_error: Optional[str] = None,
    ) -> None:
        """Drive one task to success or budget exhaustion."""
        task = state.tasks[index]
        budget = self.max_retries + 1
        delay = self.retry_backoff_s
        error_text = initial_error or "unknown error"
        while state.attempts.get(index, 0) < budget:
            state.attempts[index] = state.attempts.get(index, 0) + 1
            try:
                value, wall, pid = run_one(task)
            except Exception as exc:
                error_text = f"{type(exc).__name__}: {exc}"
                if state.attempts[index] < budget and delay > 0:
                    time.sleep(delay)
                    delay *= 2
                continue
            self._resolve_executed(state, index, value, wall, pid, cache)
            if progress is not None:
                progress.advance()
            return
        state.failures[index] = TaskFailure(
            index=index, key=task.label(), error=error_text,
            attempts=state.attempts.get(index, 0),
        )
        if cache is not None and index in state.locked:
            # Never cache a failure placeholder — but do free the key
            # so a concurrent runner can try its own luck.
            cache.release(state.keys[index])
            state.locked.discard(index)
        if progress is not None:
            progress.advance()

    def _resolve_executed(
        self,
        state: _RunState,
        index: int,
        value: Any,
        wall: float,
        pid: int,
        cache: Optional[ResultCache],
    ) -> None:
        """Record one freshly computed result and publish it."""
        state.results[index] = value
        state.walls[index] = wall
        state.pids[index] = pid
        state.executed.add(index)
        if cache is not None and state.keys[index] is not None:
            # Publish immediately (atomic replace), then release the
            # single-flight lock so awaiting runners unblock now, not
            # at sweep end.
            with self._span("cache.put"):
                cache.put(state.keys[index], value)
            if index in state.locked:
                cache.release(state.keys[index])
                state.locked.discard(index)
        self._emit(state, index, value, cached=False)

    # ------------------------------------------------------------------
    # Awaited keys: collect another runner's results (or take over)
    # ------------------------------------------------------------------
    def _resolve_awaited(
        self,
        state: _RunState,
        awaited: List[int],
        cache: ResultCache,
        progress: Optional[SweepProgress],
    ) -> None:
        timeout_s = self._flight_timeout_s()
        for index in awaited:
            key = state.keys[index]
            hit, value = cache.wait_for(key, timeout_s=timeout_s)
            if not hit:
                # The owner vanished (crash, poison task) or is too
                # slow: take over.  The lock may be stale or contested
                # — acquire is best-effort; determinism makes a rare
                # double computation harmless.
                if cache.acquire(key):
                    state.locked.add(index)
                hit, value = cache.get(key)
            if hit:
                if index in state.locked:
                    cache.release(key)
                    state.locked.discard(index)
                state.results[index] = value
                state.hits += 1
                state.flight_waits.add(index)
                self._emit(state, index, value, cached=True)
                if progress is not None:
                    progress.advance()
                continue
            self._run_with_retries(
                state, index, self._isolated_run_one, cache, progress,
            )

    def _flight_timeout_s(self) -> float:
        if self.task_timeout_s is not None:
            return self.task_timeout_s * (self.max_retries + 2)
        return DEFAULT_FLIGHT_TIMEOUT_S

    # ------------------------------------------------------------------
    def _span(self, name: str):
        """Telemetry span timer, or a no-op when the plane is off."""
        if self._bus is None:
            return contextlib.nullcontext()
        return self._bus.timer(name)

    def _emit(self, state: _RunState, index: int, value: Any,
              cached: bool) -> None:
        if self._bus is not None:
            self._bus.count("sweep.tasks_done")
            if cached:
                self._bus.count("sweep.cache_hits")
            total = self._bus.registry.gauge("sweep.tasks_total").value
            done = self._bus.registry.counter("sweep.tasks_done").value
            self._bus.record("sweep.queue_depth", max(0.0, total - done))
        if self.on_result is not None:
            self.on_result(index, state.tasks[index], value, cached)

    def _resolve_progress(self, total: int) -> Optional[SweepProgress]:
        configured = self.progress
        if isinstance(configured, SweepProgress):
            return configured
        if configured is None:
            configured = progress_enabled_by_env()
        return SweepProgress(total) if configured else None

    def _build_manifests(
        self, state: _RunState, cache: Optional[ResultCache]
    ) -> List[RunManifest]:
        from repro import __version__

        # Pure spec identity (fingerprint=""): never force the
        # all-files code_fingerprint() walk when the cache is off —
        # that one-time cost would eat the disabled-tracing overhead
        # budget.  With the cache on, reuse its already-computed one.
        fingerprint = cache.fingerprint if cache is not None else ""
        manifests = []
        for index, task in enumerate(state.tasks):
            extra: Dict[str, Any] = {}
            failure = state.failures.get(index)
            if failure is not None:
                extra = {"attempts": failure.attempts, "failed": True,
                         "error": failure.error}
            elif state.attempts.get(index, 1) > 1:
                extra = {"attempts": state.attempts[index], "retried": True}
            if index in state.flight_waits:
                extra = {**extra, "single_flight": "waited"}
            manifests.append(RunManifest(
                key=task.label(),
                spec_hash=spec_key(task.fn, task.kwargs, fingerprint=""),
                seed=task.kwargs.get("seed"),
                cache_hit=(index not in state.executed
                           and index not in state.failures),
                wall_time_s=state.walls[index],
                worker_pid=state.pids[index],
                workers=self.workers,
                package_version=__version__,
                code_fingerprint=fingerprint,
                extra=extra,
            ))
        return manifests
