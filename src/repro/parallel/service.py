"""The sweep service CLI: submit, serve, and cache maintenance.

``python -m repro.parallel submit workload.json`` executes a
declarative :class:`~repro.workload.spec.WorkloadSpec` and streams one
JSON line per finished transfer to stdout, in completion order, while
the sweep is still running — the scripting-friendly sibling of
``repro-experiments run-spec`` (which prints a human table at the
end).  With ``--connect HOST:PORT`` the workload is shipped to a
``python -m repro.parallel serve`` process instead and results are
ingested live off the socket; the local process never imports the
simulator.

``serve`` accepts one JOB per connection, runs it through the normal
:class:`~repro.workload.session.Session` engine (honouring the
server's ``--executor``/``--workers`` and shared result cache), and
streams a REPORT frame per task followed by a final DONE frame with
the sweep stats.  Reports cross the wire as JSON
(:meth:`~repro.workload.report.TransferReport.to_dict`), not pickle:
a submission client only needs to trust the server's *data*.

``cache`` exposes the shared result store's maintenance surface
(:meth:`~repro.parallel.cache.ResultCache.stats`/``gc``/``clear``)
so fleets sharing one ``REPRO_CACHE_DIR`` can inspect and prune it.

Stream protocol (stdout of ``submit``): one JSON object per line.

``{"event": "result", "index": i, "key": k, "cached": bool,
"report": {...}}``
    One finished transfer; ``report`` is the summary form, or the
    full round-trippable form under ``--full-reports``.
``{"event": "done", "stats": {...}, "failures": [...]}``
    Terminal line; ``failures`` lists tasks that exhausted retries.
"""

import argparse
import dataclasses
import json
import os
import socket
import sys
import threading
import time
from typing import Any, Dict, List, Optional

from repro.core.errors import ConfigurationError, ReproError, SweepTaskError

__all__ = ["cache_main", "serve_main", "submit_main"]

#: ``submit --connect`` handshake budget: how many connection attempts
#: before giving up, and the backoff between them.  Covers the window
#: where ``serve`` was just launched and is still binding its socket,
#: so serve→submit orchestration needs no ad-hoc sleeps.
CONNECT_ATTEMPTS = 8
CONNECT_BACKOFF_S = 0.1
CONNECT_BACKOFF_CAP_S = 1.0


def _connect_with_retry(host: str, port: int,
                        timeout_s: float = 10.0,
                        attempts: int = CONNECT_ATTEMPTS) -> socket.socket:
    """Connect, retrying refused/unreachable with exponential backoff.

    Raises the final ``OSError`` once the attempt budget is spent; the
    caller turns that into the exit-2 diagnostic.
    """
    delay = CONNECT_BACKOFF_S
    started = time.monotonic()
    for attempt in range(1, attempts + 1):
        try:
            return socket.create_connection((host, port), timeout=timeout_s)
        except OSError as exc:
            if attempt >= attempts:
                elapsed = time.monotonic() - started
                raise OSError(
                    f"{exc} (after {attempts} attempts over "
                    f"{elapsed:.1f}s — is 'python -m repro.parallel "
                    f"serve' running there?)"
                ) from exc
            time.sleep(delay)
            delay = min(delay * 2, CONNECT_BACKOFF_CAP_S)
    raise AssertionError("unreachable")  # pragma: no cover


def _emit(obj: Dict[str, Any], stream=None) -> None:
    stream = stream if stream is not None else sys.stdout
    stream.write(json.dumps(obj, sort_keys=True) + "\n")
    stream.flush()


def _stats_dict(stats) -> Optional[Dict[str, Any]]:
    return dataclasses.asdict(stats) if stats is not None else None


def _report_payload(index: int, task, report, cached: bool,
                    full: bool) -> Dict[str, Any]:
    body = report.to_dict() if full else report.summary_dict()
    return {
        "event": "result",
        "index": index,
        "key": task.label(),
        "cached": bool(cached),
        "report": body,
    }


def _failures_payload(exc: SweepTaskError) -> List[Dict[str, Any]]:
    return [
        {"index": f.index, "key": f.key, "error": f.error,
         "attempts": f.attempts}
        for f in getattr(exc, "failures", [])
    ]


def _load_workload(path: str):
    from repro.workload import WorkloadSpec

    with open(path, "r", encoding="utf-8") as handle:
        return WorkloadSpec.from_json(handle.read())


def _parse_one_address(text: str, flag: str):
    from repro.parallel.executors import parse_socket_addresses

    addresses = parse_socket_addresses(text)
    if len(addresses) != 1:
        raise ConfigurationError(f"{flag} takes exactly one HOST:PORT")
    return addresses[0]


# ---------------------------------------------------------------------------
# submit
# ---------------------------------------------------------------------------
def _telemetry_sink(path: Optional[str]):
    """A started JSONL sink on the process bus, or a no-op context."""
    import contextlib

    if not path:
        return contextlib.nullcontext()
    from repro.obs.telemetry import TelemetrySink, get_bus

    return TelemetrySink(get_bus(), path)


def _run_local(args) -> int:
    from repro.workload import Session

    try:
        workload = _load_workload(args.workload)
    except (OSError, ConfigurationError, ValueError) as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 2

    def on_result(index, task, report, cached):
        _emit(_report_payload(index, task, report, cached,
                              args.full_reports))

    session = Session(seed=workload.seed)
    failures: List[Dict[str, Any]] = []
    exit_code = 0
    try:
        with _telemetry_sink(args.telemetry_out):
            session.run_workload(
                workload, workers=args.workers, executor=args.executor,
                on_result=on_result,
            )
    except SweepTaskError as exc:
        failures = _failures_payload(exc)
        exit_code = 3
    except (ConfigurationError, ReproError) as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 2
    _emit({"event": "done", "stats": _stats_dict(session.last_stats),
           "failures": failures})
    return exit_code


def _run_remote(args) -> int:
    from repro.obs.progress import SweepProgress, progress_enabled_by_env
    from repro.parallel import wire

    try:
        host, port = _parse_one_address(args.connect, "--connect")
        workload = _load_workload(args.workload)
    except (OSError, ConfigurationError, ValueError) as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 2

    # Unknown total on purpose: the server owns the sweep; this side
    # just ingests whatever streams back (done/? + rate, no fake ETA).
    progress = (SweepProgress(None, label=workload.name)
                if progress_enabled_by_env() else None)
    try:
        sock = _connect_with_retry(host, port)
    except OSError as exc:
        print(f"submit: cannot reach {host}:{port}: {exc}",
              file=sys.stderr)
        return 2
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        local_hello = wire.hello_payload()
        wire.send_json(sock, wire.MSG_HELLO, local_hello)
        msg_type, payload = wire.recv_frame(sock, timeout_s=30.0)
        if msg_type == wire.MSG_REFUSED:
            print(f"submit: refused: {wire.recv_json(payload).get('error')}",
                  file=sys.stderr)
            return 2
        if msg_type != wire.MSG_HELLO:
            print(f"submit: expected HELLO, got message {msg_type}",
                  file=sys.stderr)
            return 2
        problem = wire.check_hello(local_hello, wire.recv_json(payload),
                                   who="server")
        if problem is not None:
            print(f"submit: {problem}", file=sys.stderr)
            return 2
        wire.send_json(sock, wire.MSG_JOB, {
            "workload": workload.to_dict(),
            "workers": args.workers,
            "executor": args.executor,
            "full_reports": bool(args.full_reports),
        })
        if progress is not None:
            progress.start()
        sock.settimeout(None)  # the server heartbeats via REPORT frames
        while True:
            msg_type, payload = wire.recv_frame(sock)
            if msg_type == wire.MSG_REPORT:
                event = wire.recv_json(payload)
                _emit(event)
                if progress is not None:
                    if event.get("cached"):
                        progress.note_cached(1)
                    else:
                        progress.advance(1)
            elif msg_type == wire.MSG_DONE:
                if progress is not None:
                    progress.finish()
                done = wire.recv_json(payload)
                _emit(done)
                return 3 if done.get("failures") else 0
            elif msg_type == wire.MSG_REFUSED:
                error = wire.recv_json(payload).get("error")
                print(f"submit: server refused job: {error}",
                      file=sys.stderr)
                return 2
            else:
                print(f"submit: unexpected message {msg_type}",
                      file=sys.stderr)
                return 2
    except wire.WireError as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 2
    finally:
        try:
            sock.close()
        except OSError:
            pass


def submit_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel submit",
        description="Execute a WorkloadSpec JSON file, streaming one "
                    "JSON line per finished transfer to stdout.",
    )
    parser.add_argument("workload", help="path to a workload JSON file")
    parser.add_argument("--connect", metavar="HOST:PORT", default=None,
                        help="submit to a 'python -m repro.parallel "
                             "serve' process instead of running locally")
    parser.add_argument("--executor", default=None,
                        help="sweep backend: inprocess, process, or "
                             "socket:HOST:PORT,... (default: "
                             "$REPRO_EXECUTOR, else process)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes/shards (default: "
                             "$REPRO_WORKERS, else 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not populate the shared "
                             "result cache (local runs only)")
    parser.add_argument("--full-reports", action="store_true",
                        help="stream full round-trippable report dicts "
                             "instead of compact summaries")
    parser.add_argument("--telemetry-out", metavar="FILE", default=None,
                        help="write periodic telemetry snapshots (JSONL) "
                             "to FILE during a local run; render later "
                             "with 'python -m repro.obs summarize FILE'")
    parser.add_argument("--chaos", metavar="FILE", default=None,
                        help="arm this deterministic infrastructure chaos "
                             "spec (sets REPRO_CHAOS for this process and "
                             "its workers; see repro.parallel.chaos)")
    args = parser.parse_args(argv)
    if args.chaos:
        from repro.parallel.chaos import CHAOS_ENV

        os.environ[CHAOS_ENV] = os.path.abspath(args.chaos)
    if args.connect and args.telemetry_out:
        parser.error("--telemetry-out applies to local runs; for remote "
                     "jobs point it at the server's serve --telemetry-out")
    if args.no_cache:
        from repro.parallel.cache import CACHE_TOGGLE_ENV

        os.environ[CACHE_TOGGLE_ENV] = "0"
    if args.connect:
        return _run_remote(args)
    return _run_local(args)


# ---------------------------------------------------------------------------
# serve
# ---------------------------------------------------------------------------
def _handle_job(conn: socket.socket, job: Dict[str, Any], args,
                log) -> None:
    from repro.parallel import wire
    from repro.workload import Session, WorkloadSpec

    send_lock = threading.Lock()
    try:
        workload = WorkloadSpec.from_dict(job["workload"])
    except (KeyError, TypeError, ValueError, ConfigurationError) as exc:
        wire.send_json(conn, wire.MSG_REFUSED,
                       {"error": f"bad workload: {exc}"}, lock=send_lock)
        return
    # Server-side flags win over the client's request: the operator
    # who started `serve` owns this machine's parallelism and fleet.
    workers = args.workers if args.workers is not None else job.get("workers")
    executor = args.executor if args.executor is not None \
        else job.get("executor")
    full = bool(job.get("full_reports"))
    log(f"job: workload {workload.name!r}, "
        f"{len(workload.transfers)} transfer(s)")

    # A client that disconnects mid-stream must not abort the sweep
    # (results still land in the shared cache) and must never take the
    # server down: the first failed send trips this event and every
    # later send is skipped.
    client_gone = threading.Event()

    def _send(msg_type: int, obj: Dict[str, Any]) -> None:
        if client_gone.is_set():
            return
        try:
            wire.send_json(conn, msg_type, obj, lock=send_lock)
        except OSError:
            client_gone.set()
            log("client disconnected mid-stream; finishing the sweep "
                "for the cache")

    def on_result(index, task, report, cached):
        _send(wire.MSG_REPORT,
              _report_payload(index, task, report, cached, full))

    session = Session(seed=workload.seed)
    failures: List[Dict[str, Any]] = []
    try:
        session.run_workload(workload, workers=workers, executor=executor,
                             on_result=on_result)
    except SweepTaskError as exc:
        failures = _failures_payload(exc)
    except (ConfigurationError, ReproError) as exc:
        _send(wire.MSG_REFUSED, {"error": str(exc)})
        return
    except Exception as exc:  # noqa: BLE001 - one job, not the server
        # A job blowing up in unexpected ways is *that connection's*
        # problem: report and return to the accept loop intact.
        log(f"job crashed: {type(exc).__name__}: {exc}")
        _send(wire.MSG_REFUSED,
              {"error": f"job crashed: {type(exc).__name__}: {exc}"})
        return
    if client_gone.is_set():
        return
    _send(wire.MSG_DONE, {
        "event": "done",
        "stats": _stats_dict(session.last_stats),
        "failures": failures,
    })


def _serve_connection(conn: socket.socket, args, log) -> None:
    from repro.parallel import wire

    local_hello = wire.hello_payload()
    msg_type, payload = wire.recv_frame(conn, timeout_s=30.0)
    if msg_type != wire.MSG_HELLO:
        wire.send_json(conn, wire.MSG_REFUSED, {"error": "expected HELLO"})
        return
    problem = wire.check_hello(local_hello, wire.recv_json(payload),
                               who="client")
    if problem is not None:
        log(f"refusing client: {problem}")
        wire.send_json(conn, wire.MSG_REFUSED, {"error": problem})
        return
    wire.send_json(conn, wire.MSG_HELLO, local_hello)
    msg_type, payload = wire.recv_frame(conn, timeout_s=60.0)
    if msg_type != wire.MSG_JOB:
        wire.send_json(conn, wire.MSG_REFUSED,
                       {"error": f"expected JOB, got message {msg_type}"})
        return
    conn.settimeout(None)
    _handle_job(conn, wire.recv_json(payload), args, log)


def serve_main(argv: Optional[List[str]] = None) -> int:
    from repro.parallel import wire

    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel serve",
        description="Accept workload submissions over TCP and stream "
                    "results back as they finish. SECURITY: serves "
                    "anyone who can connect — listen on loopback or a "
                    "trusted network only.",
    )
    parser.add_argument("--listen", metavar="HOST:PORT",
                        default="127.0.0.1:0",
                        help="bind address (default 127.0.0.1:0; the "
                             "chosen port is printed on stdout)")
    parser.add_argument("--once", action="store_true",
                        help="exit after the first job completes")
    parser.add_argument("--executor", default=None,
                        help="force this sweep backend for every job "
                             "(overrides the client's request)")
    parser.add_argument("--workers", type=int, default=None,
                        help="force this worker count for every job")
    parser.add_argument("--telemetry-port", type=int, default=None,
                        metavar="PORT",
                        help="expose live telemetry over HTTP on this "
                             "port (0 = kernel-assigned): /metrics is "
                             "Prometheus text exposition, /healthz a "
                             "JSON snapshot for 'repro.obs top'")
    parser.add_argument("--telemetry-out", metavar="FILE", default=None,
                        help="write periodic telemetry snapshots (JSONL) "
                             "to FILE while serving")
    parser.add_argument("--chaos", metavar="FILE", default=None,
                        help="arm this deterministic infrastructure chaos "
                             "spec (sets REPRO_CHAOS; see "
                             "repro.parallel.chaos)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-connection logging on stderr")
    args = parser.parse_args(argv)
    if args.chaos:
        from repro.parallel.chaos import CHAOS_ENV

        os.environ[CHAOS_ENV] = os.path.abspath(args.chaos)

    def log(message: str) -> None:
        if not args.quiet:
            print(f"repro-serve: {message}", file=sys.stderr, flush=True)

    host, _, port_text = args.listen.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        parser.error(f"--listen must be HOST:PORT, got {args.listen!r}")
    if not host or not 0 <= port < 65536:
        parser.error(f"--listen must be HOST:PORT, got {args.listen!r}")

    telemetry_server = None
    telemetry_sink = None
    if args.telemetry_port is not None:
        from repro.obs.telemetry import TelemetryServer, get_bus

        if not 0 <= args.telemetry_port < 65536:
            parser.error(
                f"--telemetry-port out of range: {args.telemetry_port}"
            )
        telemetry_server = TelemetryServer(
            get_bus(), host=host, port=args.telemetry_port
        )
    if args.telemetry_out:
        from repro.obs.telemetry import TelemetrySink, get_bus

        telemetry_sink = TelemetrySink(get_bus(), args.telemetry_out)

    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        server.bind((host, port))
        server.listen(4)
        bound_host, bound_port = server.getsockname()[:2]
        print(f"repro-serve listening on {bound_host}:{bound_port} "
              f"pid={os.getpid()}", flush=True)
        if telemetry_server is not None:
            tel_host, tel_port = telemetry_server.start()
            print(f"repro-serve telemetry on {tel_host}:{tel_port}",
                  flush=True)
        if telemetry_sink is not None:
            telemetry_sink.start()
        while True:
            conn, peer = server.accept()
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            log(f"connection from {peer[0]}:{peer[1]}")
            try:
                _serve_connection(conn, args, log)
            except wire.WireError as exc:
                log(f"connection error: {exc}")
            except Exception as exc:  # noqa: BLE001 - stay serving
                # Per-connection isolation: nothing one connection
                # does — a crashing job, a mid-frame disconnect, a
                # protocol violation — may take the server down.
                log(f"connection failed: {type(exc).__name__}: {exc}")
            finally:
                try:
                    conn.close()
                except OSError:
                    pass
            if args.once:
                return 0
    except KeyboardInterrupt:
        return 0
    finally:
        if telemetry_sink is not None:
            telemetry_sink.stop()
        if telemetry_server is not None:
            telemetry_server.stop()
        server.close()


# ---------------------------------------------------------------------------
# cache
# ---------------------------------------------------------------------------
def cache_main(argv: Optional[List[str]] = None) -> int:
    from repro.parallel.cache import ResultCache

    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel cache",
        description="Inspect and maintain the shared sweep result store.",
    )
    parser.add_argument("command", choices=("stats", "gc", "clear"),
                        help="stats: entry/lock/size summary; gc: drop "
                             "stale locks, orphan tempfiles, and aged "
                             "entries; clear: remove every entry")
    parser.add_argument("--dir", default=None,
                        help="cache directory (default: $REPRO_CACHE_DIR, "
                             "else ~/.cache/repro-sweep)")
    parser.add_argument("--max-age-s", type=float, default=None,
                        help="gc only: also drop entries older than this "
                             "many seconds")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output")
    args = parser.parse_args(argv)

    cache = ResultCache(args.dir) if args.dir else ResultCache()
    if args.command == "stats":
        stats = cache.stats()
        if args.json:
            _emit(stats)
        else:
            print(f"cache dir : {cache.root}")
            print(f"entries   : {stats['entries']} "
                  f"({stats['total_bytes']} bytes)")
            print(f"locks     : {stats['locks']} "
                  f"({stats['stale_locks']} stale)")
            print(f"tempfiles : {stats['orphan_tmp']} orphaned")
            if stats["entries"]:
                print(f"age       : newest {stats['newest_age_s']:.0f}s, "
                      f"oldest {stats['oldest_age_s']:.0f}s")
        return 0
    if args.command == "gc":
        removed = cache.gc(max_age_s=args.max_age_s)
        if args.json:
            _emit(removed)
        else:
            print(f"removed {removed['entries']} entr"
                  f"{'y' if removed['entries'] == 1 else 'ies'}, "
                  f"{removed['locks']} stale lock(s), "
                  f"{removed['tmp']} orphan tempfile(s)")
        return 0
    removed_count = cache.clear()
    if args.json:
        _emit({"entries": removed_count})
    else:
        print(f"removed {removed_count} entr"
              f"{'y' if removed_count == 1 else 'ies'}")
    return 0
