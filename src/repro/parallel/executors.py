"""Pluggable sweep execution backends.

The :class:`~repro.parallel.coordinator.SweepCoordinator` owns *what*
runs (cache lookups, retries, manifests); an :class:`Executor` owns
*where* it runs.  Three backends ship:

``inprocess``
    Everything executes serially in the calling process — no pickling,
    no subprocesses.  Debugging and profiling stay trivial, and it is
    the reference against which the parallel backends must be
    bit-identical.
``process``
    The classic local :class:`~concurrent.futures.ProcessPoolExecutor`
    shard pool (the default, and the pre-refactor behavior).
``socket:HOST:PORT[,HOST:PORT...]``
    Shards dispatched to remote worker processes (``python -m
    repro.parallel worker --listen HOST:PORT``) over the
    length-prefixed TCP protocol of :mod:`repro.parallel.wire`.

Selection: explicit argument > :func:`set_default_executor` >
``REPRO_EXECUTOR`` > ``"process"``.  Determinism is the backends'
contract: sharding is computed by the coordinator from task order
alone, every task carries its own seed, and results are reassembled
by task index — so any backend at any worker count produces
bit-identical sweep results.
"""

import multiprocessing
import os
from concurrent.futures import (
    ProcessPoolExecutor,
    TimeoutError as FuturesTimeout,
    as_completed,
)
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.parallel.task import SimTask, run_shard, run_task_timed

__all__ = [
    "EXECUTOR_ENV",
    "Executor",
    "InProcessExecutor",
    "LocalPoolExecutor",
    "ShardOutcome",
    "get_default_executor",
    "make_executor",
    "resolve_executor_spec",
    "set_default_executor",
]

#: Environment variable consulted when no executor spec is given.
EXECUTOR_ENV = "REPRO_EXECUTOR"

#: Spellings accepted for the built-in backends.
_ALIASES = {
    "inprocess": "inprocess",
    "in-process": "inprocess",
    "serial": "inprocess",
    "process": "process",
    "pool": "process",
    "local": "process",
}

_default_executor_spec: Optional[str] = None


def _normalize_spec(spec: str) -> str:
    text = spec.strip().lower()
    if text in _ALIASES:
        return _ALIASES[text]
    if text.startswith("socket:"):
        # Validate eagerly so a typo'd REPRO_EXECUTOR fails at
        # configuration time, not mid-sweep.
        parse_socket_addresses(spec[len("socket:"):])
        return "socket:" + spec[len("socket:"):].strip()
    raise ConfigurationError(
        f"unknown executor {spec!r} (expected 'inprocess', 'process', or "
        f"'socket:HOST:PORT[,HOST:PORT...]')"
    )


def parse_socket_addresses(text: str) -> List[Tuple[str, int]]:
    """Parse ``HOST:PORT[,HOST:PORT...]`` into address tuples."""
    addresses = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        host, sep, port_text = part.rpartition(":")
        if not sep or not host:
            raise ConfigurationError(
                f"socket executor address must be HOST:PORT, got {part!r}"
            )
        try:
            port = int(port_text)
        except ValueError:
            raise ConfigurationError(
                f"socket executor port must be an integer: {part!r}"
            )
        if not 0 < port < 65536:
            raise ConfigurationError(
                f"socket executor port out of range: {part!r}"
            )
        addresses.append((host, port))
    if not addresses:
        raise ConfigurationError(
            "socket executor needs at least one HOST:PORT address"
        )
    return addresses


def set_default_executor(spec: Optional[str]) -> None:
    """Set the process-wide default executor spec (``None`` resets)."""
    global _default_executor_spec
    _default_executor_spec = None if spec is None else _normalize_spec(spec)


def get_default_executor() -> Optional[str]:
    return _default_executor_spec


def resolve_executor_spec(spec: Optional[str] = None) -> str:
    """Resolve the executor spec string without instantiating it."""
    if spec is not None:
        return _normalize_spec(spec)
    if _default_executor_spec is not None:
        return _default_executor_spec
    env = os.environ.get(EXECUTOR_ENV)
    if env and env.strip():
        return _normalize_spec(env)
    return "process"


def make_executor(spec=None) -> "Executor":
    """Instantiate the executor selected by ``spec``.

    ``spec`` may be an :class:`Executor` instance (used as given), a
    spec string, or ``None`` (resolved via default/env).
    """
    if isinstance(spec, Executor):
        return spec
    resolved = resolve_executor_spec(spec)
    if resolved == "inprocess":
        return InProcessExecutor()
    if resolved == "process":
        return LocalPoolExecutor()
    if resolved.startswith("socket:"):
        from repro.parallel.socketexec import SocketExecutor

        return SocketExecutor(
            parse_socket_addresses(resolved[len("socket:"):])
        )
    raise ConfigurationError(f"unknown executor {resolved!r}")


@dataclass
class ShardOutcome:
    """What happened to one dispatched shard.

    Either ``values`` holds one ``(value, wall_s, pid)`` triple per
    task (in shard order), or ``error`` explains why the whole shard
    must be re-run task-by-task in isolation.
    """

    values: Optional[List[Tuple[Any, float, int]]] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class Executor:
    """Interface every sweep backend implements.

    Backends execute *shards* (ordered task lists) and single tasks;
    they never see the cache, retries, or manifests — the coordinator
    owns those, so every backend inherits the same hardening.
    """

    #: Human/stats-facing backend name.
    name = "executor"

    #: When the coordinator cuts a single shard, may it skip the
    #: backend and run inline (no pool, no pickling)?  True preserves
    #: the classic ``workers=1`` debugging contract; remote backends
    #: set False so even a one-worker sweep exercises the wire.
    inline_when_serial = True

    def shard_count(self, workers: int, nmisses: int) -> int:
        """How many shards to cut ``nmisses`` tasks into."""
        raise NotImplementedError

    def run_shards(
        self,
        shards: List[List[SimTask]],
        task_timeout_s: Optional[float] = None,
    ) -> Iterator[Tuple[int, ShardOutcome]]:
        """Execute shards, yielding ``(shard_index, outcome)``.

        Yield order is completion order and may be arbitrary; the
        coordinator reassembles results by task index.  A backend must
        never raise for a *task* problem — that is reported as a
        failed :class:`ShardOutcome` — only for its own unusable
        configuration (e.g. no reachable socket worker).
        """
        raise NotImplementedError

    def run_one(
        self, task: SimTask, task_timeout_s: Optional[float] = None
    ) -> Tuple[Any, float, int]:
        """Run one task with the best isolation the backend offers.

        Used for poison-task isolation re-runs; raises on failure or
        timeout (the coordinator's retry loop catches).
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release any long-lived backend resources."""


class InProcessExecutor(Executor):
    """Serial in-process execution: one shard, no isolation.

    A crashing task crashes the caller and a hung task hangs it — by
    design: this backend trades isolation for zero-overhead debugging.
    """

    name = "inprocess"

    def shard_count(self, workers: int, nmisses: int) -> int:
        return 1 if nmisses else 0

    def run_shards(self, shards, task_timeout_s=None):
        for shard_index, shard in enumerate(shards):
            try:
                yield shard_index, ShardOutcome(values=run_shard(shard))
            except Exception as exc:
                yield shard_index, ShardOutcome(
                    error=f"{type(exc).__name__}: {exc}"
                )

    def run_one(self, task, task_timeout_s=None):
        return run_task_timed(task)


class LocalPoolExecutor(Executor):
    """Shards across a local :class:`ProcessPoolExecutor`.

    Failure containment: a shard whose worker crashes
    (``BrokenProcessPool``), raises, or blows the scaled shard
    deadline is reported as a failed :class:`ShardOutcome`; the
    coordinator re-runs its tasks through :meth:`run_one`, where the
    per-task budget is exact and a hung worker is terminated.
    """

    name = "process"

    def shard_count(self, workers: int, nmisses: int) -> int:
        return min(workers, nmisses)

    def run_shards(self, shards, task_timeout_s=None):
        try:
            pool = ProcessPoolExecutor(max_workers=len(shards),
                                       mp_context=self._mp_context())
        except (OSError, ValueError) as exc:
            # No pool at all (fd/process limits): every shard degrades
            # to the coordinator's isolation path (which falls back to
            # in-process execution when pools stay unavailable).
            error = f"{type(exc).__name__}: {exc}"
            for shard_index in range(len(shards)):
                yield shard_index, ShardOutcome(error=error)
            return
        hung = False
        try:
            futures = {
                pool.submit(run_shard, shard): shard_index
                for shard_index, shard in enumerate(shards)
            }
            # The shard phase deadline scales with the longest shard
            # (tasks run sequentially inside a shard) plus one extra
            # task budget of slack; the per-task budget is enforced
            # exactly during isolation re-runs.
            timeout = None
            if task_timeout_s is not None:
                longest = max(len(shard) for shard in shards)
                timeout = task_timeout_s * (longest + 1)
            done = set()
            try:
                for future in as_completed(futures, timeout=timeout):
                    done.add(future)
                    yield futures[future], self._outcome(future)
            except FuturesTimeout:
                hung = True
                for future, shard_index in futures.items():
                    if future in done:
                        continue
                    if future.done():
                        yield shard_index, self._outcome(future)
                        continue
                    future.cancel()
                    yield shard_index, ShardOutcome(error=(
                        f"shard timed out after {timeout:g}s "
                        f"(task_timeout_s={task_timeout_s:g})"
                    ))
        finally:
            if hung:
                # Cancelled futures may already be running; reclaim
                # their workers so shutdown cannot block forever.
                self._terminate_pool(pool)
            pool.shutdown(wait=not hung, cancel_futures=True)

    @staticmethod
    def _outcome(future) -> ShardOutcome:
        try:
            return ShardOutcome(values=future.result(timeout=0))
        except Exception as exc:  # BrokenProcessPool, task exception, ...
            # BrokenProcessPool poisons every pending future of the
            # pool, so innocent shards land here too — their isolation
            # re-run succeeds on the first retry.
            return ShardOutcome(error=f"{type(exc).__name__}: {exc}")

    def run_one(self, task, task_timeout_s=None):
        """Run one task in its own single-worker pool.

        A crash (``BrokenProcessPool``) or timeout is confined to this
        task; a hung worker is terminated.  If no pool can be spawned
        at all, the task runs in-process — losing crash isolation but
        keeping the sweep alive.
        """
        try:
            pool = ProcessPoolExecutor(max_workers=1,
                                       mp_context=self._mp_context())
        except (OSError, ValueError):
            return run_task_timed(task)
        hung = False
        try:
            future = pool.submit(run_task_timed, task)
            try:
                return future.result(timeout=task_timeout_s)
            except FuturesTimeout:
                hung = True
                future.cancel()
                raise FuturesTimeout(
                    f"task {task.label()!r} exceeded "
                    f"task_timeout_s={task_timeout_s:g}s"
                )
        finally:
            if hung:
                self._terminate_pool(pool)
            pool.shutdown(wait=not hung, cancel_futures=True)

    @staticmethod
    def _terminate_pool(pool: ProcessPoolExecutor) -> None:
        """Kill worker processes of a pool with hung tasks."""
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:
                pass

    @staticmethod
    def _mp_context():
        """Prefer ``fork`` so workers inherit ``sys.path`` untouched."""
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()
