"""Length-prefixed TCP framing for the distributed sweep service.

Every frame is a 9-byte header — one message-type byte, a 4-byte
big-endian payload length, and a CRC32 of the payload — followed by
the payload.  The checksum turns in-transit payload corruption (bit
rot, a buggy middlebox, the chaos harness's ``frame_garbage`` fault)
into a :class:`WireError` the executor can heal by redispatching,
instead of silently unpickling damaged data.  Control frames
(``HELLO``, ``DONE``, job submissions, streamed reports) carry UTF-8
JSON; shard dispatch and results carry pickle, because task kwargs and
:class:`~repro.workload.report.TransferReport` values are arbitrary
Python data.

Security model: the protocol is **trust-the-network** — pickle over
TCP executes arbitrary code on unpickling, so workers must only
listen on loopback or an otherwise trusted/tunnelled network, exactly
like the SSH-launched compute helpers this replaces.  The ``HELLO``
handshake carries the sender's wire version and source-tree
fingerprint; a worker refuses mismatched clients so two checkouts can
never silently mix results.

Message types
-------------
``HELLO``      both directions, JSON ``{version, fingerprint, pid}``
``SHARD``      client -> worker, pickle ``(shard_id, [SimTask...])``
``RESULT``     worker -> client, pickle ``(shard_id, [(value, wall, pid)...])``
``SHARD_ERR``  worker -> client, JSON ``{shard_id, error}``
``HEARTBEAT``  worker -> client, empty (legacy liveness) or JSON
               ``STATS`` payload ``{pid, tasks_done, in_flight,
               queue_depth, tasks_per_s, rss_kb, uptime_s,
               interval_s}``; both forms prove liveness while a shard
               runs, the payload additionally feeds the telemetry
               bus (:mod:`repro.obs.telemetry`).  An empty payload
               stays valid so the frame semantics are unchanged —
               no ``WIRE_VERSION`` bump (the fingerprint handshake
               already pins both sides to one source tree).
``SHUTDOWN``   client -> worker, empty; close the connection
``JOB``        client -> service, JSON workload submission
``REPORT``     service -> client, JSON one streamed task result
``DONE``       service -> client, JSON final stats/summary
``REFUSED``    either direction, JSON ``{error}`` before closing
"""

import json
import pickle
import socket
import struct
import zlib
from typing import Any, Optional, Tuple

from repro.core.errors import ReproError
from repro.parallel import chaos

__all__ = [
    "WIRE_VERSION",
    "WireError",
    "MSG_HELLO",
    "MSG_SHARD",
    "MSG_RESULT",
    "MSG_SHARD_ERR",
    "MSG_HEARTBEAT",
    "MSG_SHUTDOWN",
    "MSG_JOB",
    "MSG_REPORT",
    "MSG_DONE",
    "MSG_REFUSED",
    "recv_frame",
    "recv_json",
    "send_frame",
    "send_json",
    "send_pickle",
]

#: Bump on any incompatible framing or message-semantics change.
#: v2: the frame header grew a CRC32 of the payload.
WIRE_VERSION = 2

#: Refuse absurd frames before allocating for them (corrupt peer,
#: port scanner, wrong protocol): 256 MiB is far above any shard.
MAX_FRAME_BYTES = 256 * 1024 * 1024

MSG_HELLO = 1
MSG_SHARD = 2
MSG_RESULT = 3
MSG_SHARD_ERR = 4
MSG_HEARTBEAT = 5
MSG_SHUTDOWN = 6
MSG_JOB = 7
MSG_REPORT = 8
MSG_DONE = 9
MSG_REFUSED = 10

_HEADER = struct.Struct(">BII")


class WireError(ReproError):
    """The peer hung up, timed out, or sent a malformed frame."""


def send_frame(sock: socket.socket, msg_type: int, payload: bytes = b"",
               lock=None) -> None:
    """Send one frame; ``lock`` serializes concurrent senders.

    This is the chaos harness's wire seam: with ``REPRO_CHAOS`` armed,
    an outbound RESULT frame may be truncated mid-payload (then the
    socket is shut down, so the peer sees EOF inside a frame) or have
    its payload garbled under an intact header.  The header CRC is
    computed over the *clean* payload in both cases — the model is
    corruption in transit, after the sender checksummed a healthy
    frame — so the receiver always detects the damage.  Chaos off
    costs one ``None`` check.
    """
    header = _HEADER.pack(msg_type, len(payload), zlib.crc32(payload))
    controller = chaos.active_controller()
    if controller is not None:
        action = controller.frame_action(is_result=(msg_type == MSG_RESULT))
        if action == "frame_garbage":
            payload = controller.garble(payload)
        elif action == "frame_truncate":
            frame = header + payload[:max(1, len(payload) // 2)]
            if lock is not None:
                with lock:
                    sock.sendall(frame)
            else:
                sock.sendall(frame)
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            return
    frame = header + payload
    if lock is not None:
        with lock:
            sock.sendall(frame)
    else:
        sock.sendall(frame)


def send_json(sock: socket.socket, msg_type: int, obj: Any,
              lock=None) -> None:
    send_frame(sock, msg_type, json.dumps(obj).encode("utf-8"), lock=lock)


def send_pickle(sock: socket.socket, msg_type: int, obj: Any,
                lock=None) -> None:
    send_frame(sock, msg_type,
               pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL),
               lock=lock)


def _recv_exact(sock: socket.socket, nbytes: int) -> bytes:
    chunks = []
    remaining = nbytes
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except socket.timeout:
            raise WireError(f"peer silent past the {sock.gettimeout():g}s "
                            f"receive deadline")
        except OSError as exc:
            raise WireError(f"connection lost: {exc}")
        if not chunk:
            raise WireError("peer closed the connection mid-frame"
                            if chunks or remaining != nbytes
                            else "peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket,
               timeout_s: Optional[float] = None) -> Tuple[int, bytes]:
    """Receive one frame as ``(msg_type, payload)``.

    ``timeout_s`` bounds the wait for *this* frame (``None`` keeps the
    socket's current timeout).  Raises :class:`WireError` on EOF,
    timeout, a malformed header, or a payload checksum mismatch.
    """
    if timeout_s is not None:
        sock.settimeout(timeout_s)
    header = _recv_exact(sock, _HEADER.size)
    msg_type, length, crc = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame of {length} bytes exceeds the "
                        f"{MAX_FRAME_BYTES}-byte cap (protocol mismatch?)")
    payload = _recv_exact(sock, length) if length else b""
    if zlib.crc32(payload) != crc:
        raise WireError(f"frame checksum mismatch on message {msg_type} "
                        f"(payload corrupted in transit)")
    return msg_type, payload


def recv_json(payload: bytes) -> Any:
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"malformed JSON payload: {exc}")


def hello_payload() -> dict:
    """The handshake body both sides exchange on connect."""
    import os

    from repro.parallel.cache import code_fingerprint

    return {
        "version": WIRE_VERSION,
        "fingerprint": code_fingerprint(),
        "pid": os.getpid(),
    }


def check_hello(local: dict, remote: dict, who: str) -> Optional[str]:
    """Return an error string when two HELLOs must not work together."""
    if remote.get("version") != local["version"]:
        return (f"{who} speaks wire version {remote.get('version')!r}, "
                f"this side speaks {local['version']}")
    if remote.get("fingerprint") != local["fingerprint"]:
        return (f"{who} runs a different repro source tree "
                f"(fingerprint mismatch) — results would not be "
                f"comparable; update both checkouts to the same revision")
    return None
