"""Task specs and the worker-side execution helpers.

A :class:`SimTask` names a module-level callable (``"pkg.mod:fn"``)
plus keyword arguments; both the arguments and the return value must
be picklable, so tasks can cross a process boundary (local pool or
socket wire) and live in the on-disk cache.  The module also carries
the small execution helpers every backend shares — run one task with
timing provenance, run a shard of tasks in order — plus the
worker-count resolution knobs (``REPRO_WORKERS``).
"""

import importlib
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.core.rng import derive_seed

__all__ = [
    "SimTask",
    "SweepStats",
    "TaskFailure",
    "WORKERS_ENV",
    "get_default_workers",
    "resolve_workers",
    "run_shard",
    "run_task_timed",
    "set_default_workers",
]

#: Environment variable consulted when no worker count is given.
WORKERS_ENV = "REPRO_WORKERS"

_default_workers: Optional[int] = None


def set_default_workers(workers: Optional[int]) -> None:
    """Set the process-wide default worker count (``None`` resets)."""
    global _default_workers
    if workers is not None and workers < 1:
        raise ConfigurationError(f"workers must be >= 1: {workers}")
    _default_workers = workers


def get_default_workers() -> Optional[int]:
    return _default_workers


def resolve_workers(workers: Optional[int] = None) -> int:
    """Explicit argument > :func:`set_default_workers` > env > 1."""
    if workers is not None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1: {workers}")
        return workers
    if _default_workers is not None:
        return _default_workers
    env = os.environ.get(WORKERS_ENV)
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ConfigurationError(
                f"{WORKERS_ENV} must be an integer: {env!r}"
            )
        if value < 1:
            raise ConfigurationError(f"{WORKERS_ENV} must be >= 1: {value}")
        return value
    return 1


@dataclass(frozen=True)
class SimTask:
    """One unit of sweep work.

    ``fn`` is a ``"module.path:callable"`` reference resolved at
    execution time (inside the worker process), so the spec itself is
    tiny and always picklable.  ``key`` is a stable human-readable
    identity used for per-task seed derivation; it defaults to the
    function path and does not affect cache addressing (the kwargs
    already do).
    """

    fn: str
    kwargs: Dict[str, Any] = field(default_factory=dict)
    key: Optional[str] = None

    def label(self) -> str:
        return self.key if self.key is not None else self.fn

    def resolve(self) -> Callable[..., Any]:
        """Import and return the task callable."""
        if ":" not in self.fn:
            raise ConfigurationError(
                f"task fn must be 'module:callable', got {self.fn!r}"
            )
        module_path, _, attr = self.fn.partition(":")
        module = importlib.import_module(module_path)
        try:
            fn = getattr(module, attr)
        except AttributeError:
            raise ConfigurationError(
                f"module {module_path!r} has no callable {attr!r}"
            )
        if not callable(fn):
            raise ConfigurationError(f"{self.fn!r} is not callable")
        return fn

    def seeded(self, master_seed: int) -> "SimTask":
        """Fill in a derived ``seed`` kwarg when the task lacks one.

        The derivation only depends on the master seed and the task's
        ``key`` — never on shard assignment, executor backend, or
        worker count — so the same sweep always simulates the same
        randomness.
        """
        if "seed" in self.kwargs:
            return self
        seed = derive_seed(master_seed, f"sweep-task.{self.label()}")
        return SimTask(fn=self.fn, kwargs={**self.kwargs, "seed": seed},
                       key=self.key)


def run_task_timed(task: SimTask) -> Tuple[Any, float, int]:
    """Run a task, returning ``(value, wall_time_s, worker_pid)``."""
    started = time.perf_counter()
    value = task.resolve()(**task.kwargs)
    return value, time.perf_counter() - started, os.getpid()


def run_shard(tasks: List[SimTask]) -> List[Tuple[Any, float, int]]:
    """Backend entry point: run one shard's tasks in order."""
    return [run_task_timed(task) for task in tasks]


@dataclass(frozen=True)
class TaskFailure:
    """One task that exhausted its retry budget."""

    index: int
    key: str
    error: str
    attempts: int


@dataclass
class SweepStats:
    """Bookkeeping from the last :meth:`SweepRunner.run` call."""

    tasks: int = 0
    cache_hits: int = 0
    executed: int = 0
    workers: int = 1
    elapsed_s: float = 0.0
    #: Tasks that needed more than one attempt but eventually succeeded.
    retried: int = 0
    #: Tasks that exhausted the retry budget (see :class:`TaskFailure`).
    failed: int = 0
    #: Executor backend name the sweep ran on (``"process"`` default).
    executor: str = "process"
    #: Cache hits resolved by waiting on another runner's computation
    #: (single-flight; subset of ``cache_hits``).
    flight_waits: int = 0

    def summary(self) -> str:
        text = (
            f"{self.tasks} tasks, {self.cache_hits} cached, "
            f"{self.executed} run on {self.workers} worker"
            f"{'s' if self.workers != 1 else ''} in {self.elapsed_s:.1f}s"
        )
        if self.executor != "process":
            text += f" [{self.executor}]"
        if self.flight_waits:
            text += f", {self.flight_waits} awaited"
        if self.retried:
            text += f", {self.retried} retried"
        if self.failed:
            text += f", {self.failed} failed"
        return text
