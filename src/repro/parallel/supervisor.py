"""Self-healing worker fleets: launch, probe, restart, tear down.

A :class:`FleetSupervisor` owns N ``python -m repro.parallel worker``
processes described by a :class:`FleetSpec`.  It scrapes each worker's
startup banner for the kernel-assigned port, hands the resulting
``socket:HOST:PORT,...`` spec to sweeps, and then *supervises*:

* a worker that exits is relaunched **on its old port** (executor
  address lists stay valid across restarts) under an exponential
  restart backoff, up to ``max_restarts`` per worker — a crash-looping
  worker is eventually marked ``failed`` and left down;
* a worker whose STATS heartbeats went stale *while a task was in
  flight* (the telemetry bus's "degraded" verdict — see
  :mod:`repro.obs.telemetry`) is SIGKILLed and relaunched: SIGKILL is
  deliverable even to a SIGSTOPped process, so a stalled worker cannot
  dodge its own restart.  Idle workers legitimately stop heartbeating
  between shards and are never touched.

The launch command is a template (``command`` in the spec) with
``{python}``/``{listen}``/``{heartbeat_s}`` placeholders, defaulting to
a local subprocess — an ``ssh host ...`` template slots in for remote
fleets without touching the supervisor (the follow-on ROADMAP item).

Fleet state (pid + start-token per worker) persists to a JSON file so
``python -m repro.parallel fleet status|down`` works from a different
process; the start token (see :mod:`repro.core.proc`) keeps ``down``
from killing an innocent process that recycled a worker's pid.

Workers are numbered 0..N-1 and launched with ``REPRO_CHAOS_INDEX`` set
accordingly, so a chaos spec (:mod:`repro.parallel.chaos`) can target
"worker 1" deterministically.
"""

import argparse
import dataclasses
import json
import os
import re
import select
import signal
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.errors import ConfigurationError, ExecutorError
from repro.core.proc import pid_start_token, same_process
from repro.obs.telemetry import active_bus
from repro.parallel.chaos import CHAOS_INDEX_ENV

__all__ = ["FLEET_STATE_SCHEMA", "FleetSpec", "FleetSupervisor",
           "default_state_path", "fleet_main"]

FLEET_STATE_SCHEMA = "repro.parallel.fleet/v1"

#: Launch template; every element is ``str.format``-ed with
#: ``python`` (this interpreter), ``listen`` (HOST:PORT), and
#: ``heartbeat_s``.  Replace with e.g. an ssh wrapper for remote hosts.
DEFAULT_COMMAND = (
    "{python}", "-m", "repro.parallel", "worker",
    "--listen", "{listen}", "--heartbeat-s", "{heartbeat_s}", "--quiet",
)

_BANNER_RE = re.compile(
    r"repro-worker listening on (\S+):(\d+) pid=(\d+)"
)


def default_state_path() -> str:
    """Where ``fleet`` subcommands keep state unless ``--state`` says."""
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-sweep",
                        "fleet.json")


def _require(condition: bool, where: str, message: str) -> None:
    if not condition:
        raise ConfigurationError(f"{where}: {message}")


def _checked_kwargs(cls, data: Mapping[str, Any], where: str) -> Dict[str, Any]:
    if not isinstance(data, Mapping):
        raise ConfigurationError(
            f"{where}: expected a JSON object, got {type(data).__name__}"
        )
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ConfigurationError(f"{where}: unknown fields {unknown}")
    return dict(data)


@dataclass(frozen=True)
class FleetSpec:
    """How many workers to run, where, and how hard to keep them up."""

    workers: int
    host: str = "127.0.0.1"
    #: Explicit ports, one per worker; empty lets the kernel pick (the
    #: supervisor scrapes each banner and pins the port for restarts).
    ports: Tuple[int, ...] = ()
    heartbeat_s: float = 1.0
    command: Tuple[str, ...] = DEFAULT_COMMAND
    #: Per-worker relaunch budget before it is marked ``failed``.
    max_restarts: int = 3
    restart_backoff_s: float = 0.5
    restart_backoff_cap_s: float = 8.0
    label: str = ""

    def __post_init__(self) -> None:
        _require(isinstance(self.workers, int) and self.workers >= 1,
                 "FleetSpec.workers",
                 f"must be an int >= 1, got {self.workers!r}")
        _require(bool(self.host) and isinstance(self.host, str),
                 "FleetSpec.host", f"must be a host name, got {self.host!r}")
        object.__setattr__(self, "ports", tuple(self.ports))
        _require(not self.ports or len(self.ports) == self.workers,
                 "FleetSpec.ports",
                 f"must list one port per worker ({self.workers}), "
                 f"got {len(self.ports)}")
        for port in self.ports:
            _require(isinstance(port, int) and 0 < port < 65536,
                     "FleetSpec.ports", f"invalid port {port!r}")
        _require(isinstance(self.heartbeat_s, (int, float))
                 and self.heartbeat_s > 0,
                 "FleetSpec.heartbeat_s",
                 f"must be positive, got {self.heartbeat_s!r}")
        object.__setattr__(self, "command", tuple(self.command))
        _require(len(self.command) >= 1
                 and all(isinstance(arg, str) for arg in self.command),
                 "FleetSpec.command", "must be a list of strings")
        _require(any("{listen}" in arg for arg in self.command),
                 "FleetSpec.command", "must use the {listen} placeholder")
        _require(isinstance(self.max_restarts, int) and self.max_restarts >= 0,
                 "FleetSpec.max_restarts",
                 f"must be an int >= 0, got {self.max_restarts!r}")
        _require(isinstance(self.restart_backoff_s, (int, float))
                 and self.restart_backoff_s >= 0,
                 "FleetSpec.restart_backoff_s",
                 f"must be >= 0, got {self.restart_backoff_s!r}")
        _require(isinstance(self.restart_backoff_cap_s, (int, float))
                 and self.restart_backoff_cap_s >= self.restart_backoff_s,
                 "FleetSpec.restart_backoff_cap_s",
                 f"must be >= restart_backoff_s, "
                 f"got {self.restart_backoff_cap_s!r}")
        _require(isinstance(self.label, str), "FleetSpec.label",
                 f"must be a string, got {self.label!r}")

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"workers": self.workers}
        if self.host != "127.0.0.1":
            data["host"] = self.host
        if self.ports:
            data["ports"] = list(self.ports)
        if self.heartbeat_s != 1.0:
            data["heartbeat_s"] = self.heartbeat_s
        if self.command != DEFAULT_COMMAND:
            data["command"] = list(self.command)
        if self.max_restarts != 3:
            data["max_restarts"] = self.max_restarts
        if self.restart_backoff_s != 0.5:
            data["restart_backoff_s"] = self.restart_backoff_s
        if self.restart_backoff_cap_s != 8.0:
            data["restart_backoff_cap_s"] = self.restart_backoff_cap_s
        if self.label:
            data["label"] = self.label
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetSpec":
        kwargs = _checked_kwargs(cls, data, "FleetSpec")
        if "ports" in kwargs:
            kwargs["ports"] = tuple(kwargs["ports"])
        if "command" in kwargs:
            kwargs["command"] = tuple(kwargs["command"])
        return cls(**kwargs)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FleetSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"fleet file is not valid JSON: {exc}")
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"fleet file must hold a JSON object, got {type(data).__name__}"
            )
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str) -> "FleetSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


@dataclass
class _WorkerRecord:
    """One supervised worker: process handle plus restart bookkeeping."""

    index: int
    host: str
    port: int = 0  # 0 until the first banner pins it
    proc: Optional[subprocess.Popen] = None
    pid: int = 0
    start_token: str = ""
    restarts: int = 0
    state: str = "down"  # down | running | backoff | failed | stopped
    next_restart_at: float = 0.0
    launched_at: float = 0.0
    last_error: str = ""

    @property
    def worker_id(self) -> str:
        return f"{self.host}:{self.port}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "address": self.worker_id,
            "pid": self.pid,
            "start_token": self.start_token,
            "restarts": self.restarts,
            "state": self.state,
        }


class FleetSupervisor:
    """Launch and keep alive one fleet of sweep workers."""

    def __init__(self, spec: FleetSpec,
                 state_path: Optional[str] = None,
                 launch_timeout_s: float = 20.0,
                 env: Optional[Dict[str, str]] = None) -> None:
        self.spec = spec
        self.state_path = state_path
        self.launch_timeout_s = launch_timeout_s
        self._env = env
        self._records: List[_WorkerRecord] = [
            _WorkerRecord(index=index, host=spec.host,
                          port=spec.ports[index] if spec.ports else 0)
            for index in range(spec.workers)
        ]
        self._lock = threading.Lock()

    # -- address surface ------------------------------------------------
    @property
    def addresses(self) -> List[Tuple[str, int]]:
        """Concrete ``(host, port)`` pairs (valid after :meth:`up`)."""
        return [(record.host, record.port) for record in self._records]

    @property
    def executor_spec(self) -> str:
        """The ``socket:...`` spec sweeps pass to ``make_executor``."""
        return "socket:" + ",".join(
            f"{host}:{port}" for host, port in self.addresses
        )

    # -- lifecycle ------------------------------------------------------
    def up(self) -> List[Tuple[str, int]]:
        """Launch every worker; returns the concrete addresses."""
        for record in self._records:
            self._launch(record)
        self._write_state()
        return self.addresses

    def _child_env(self, record: _WorkerRecord) -> Dict[str, str]:
        env = dict(os.environ if self._env is None else self._env)
        # The worker must import repro regardless of its cwd.
        import repro

        src_dir = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_dir, env.get("PYTHONPATH")) if p
        )
        env[CHAOS_INDEX_ENV] = str(record.index)
        return env

    def _launch(self, record: _WorkerRecord) -> None:
        listen = f"{record.host}:{record.port}"
        command = [
            arg.format(python=sys.executable, listen=listen,
                       heartbeat_s=f"{self.spec.heartbeat_s:g}")
            for arg in self.spec.command
        ]
        record.proc = subprocess.Popen(
            command,
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, env=self._child_env(record),
        )
        record.launched_at = time.time()
        host, port, pid = self._read_banner(record)
        record.host, record.port, record.pid = host, port, pid
        record.start_token = pid_start_token(pid)
        record.state = "running"
        record.last_error = ""

    def _read_banner(self, record: _WorkerRecord) -> Tuple[str, int, int]:
        """Scrape ``repro-worker listening on H:P pid=N`` with a deadline."""
        proc = record.proc
        deadline = time.monotonic() + self.launch_timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or proc.poll() is not None:
                self._reap(record)
                raise ExecutorError(
                    f"fleet worker {record.index} did not print its "
                    f"startup banner within {self.launch_timeout_s:g}s "
                    f"(exit code {proc.returncode})"
                )
            ready, _, _ = select.select([proc.stdout], [], [],
                                        min(remaining, 0.2))
            if not ready:
                continue
            line = proc.stdout.readline()
            if not line:
                continue
            match = _BANNER_RE.search(line)
            if match is None:
                continue  # tolerate preamble noise from ssh templates
            return match.group(1), int(match.group(2)), int(match.group(3))

    def _reap(self, record: _WorkerRecord) -> None:
        proc = record.proc
        if proc is None:
            return
        if proc.poll() is None:
            proc.kill()
        try:
            proc.wait(timeout=5)
        except subprocess.TimeoutExpired:
            pass
        if proc.stdout is not None:
            try:
                proc.stdout.close()
            except OSError:
                pass

    # -- supervision ----------------------------------------------------
    def poll(self, now: Optional[float] = None) -> List[str]:
        """One supervision pass; returns human-readable actions taken."""
        now = time.monotonic() if now is None else now
        actions: List[str] = []
        bus = active_bus()
        with self._lock:
            for record in self._records:
                if record.state == "running":
                    self._check_running(record, now, bus, actions)
                if record.state == "backoff" and now >= record.next_restart_at:
                    self._restart(record, bus, actions)
        if actions:
            self._write_state()
        return actions

    def _check_running(self, record: _WorkerRecord, now: float,
                       bus, actions: List[str]) -> None:
        code = record.proc.poll() if record.proc is not None else None
        if code is not None:
            self._reap(record)
            record.last_error = f"exited with status {code}"
            self._schedule_restart(record, now, bus, actions,
                                   reason=record.last_error)
            return
        if bus is None:
            return
        # Stall detection off the STATS heartbeats: degraded + a task
        # in flight + stats from *this* incarnation means the worker is
        # wedged (SIGSTOP, deadlock) — SIGKILL reaches even a stopped
        # process, then the normal restart path picks it up.
        for health in bus.workers():
            if health.worker_id != record.worker_id:
                continue
            if (health.state() == "degraded"
                    and health.last_seen >= record.launched_at
                    and health.stats.get("in_flight", 0) > 0):
                record.proc.kill()
                self._reap(record)
                record.last_error = "stalled (stale heartbeats mid-task)"
                self._schedule_restart(record, now, bus, actions,
                                       reason=record.last_error)
            return

    def _schedule_restart(self, record: _WorkerRecord, now: float,
                          bus, actions: List[str], reason: str) -> None:
        if record.restarts >= self.spec.max_restarts:
            record.state = "failed"
            actions.append(
                f"worker {record.index} ({record.worker_id}) {reason}; "
                f"restart budget spent ({self.spec.max_restarts}) — failed"
            )
            if bus is not None:
                bus.count("fleet.failures")
            return
        delay = min(
            self.spec.restart_backoff_s * (2 ** record.restarts),
            self.spec.restart_backoff_cap_s,
        )
        record.state = "backoff"
        record.next_restart_at = now + delay
        actions.append(
            f"worker {record.index} ({record.worker_id}) {reason}; "
            f"restart {record.restarts + 1}/{self.spec.max_restarts} "
            f"in {delay:g}s"
        )

    def _restart(self, record: _WorkerRecord, bus,
                 actions: List[str]) -> None:
        record.restarts += 1
        try:
            self._launch(record)  # same host:port — addresses stay valid
        except ExecutorError as exc:
            record.last_error = str(exc)
            self._schedule_restart(record, time.monotonic(), bus, actions,
                                   reason="relaunch failed")
            return
        actions.append(
            f"worker {record.index} restarted on {record.worker_id} "
            f"(pid {record.pid}, restart {record.restarts})"
        )
        if bus is not None:
            bus.count("fleet.restarts", worker=record.worker_id)

    def supervise(self, stop: Optional[threading.Event] = None,
                  poll_interval_s: float = 0.5,
                  on_action=None) -> None:
        """Poll until ``stop`` is set (Ctrl-C safe in ``fleet up``)."""
        stop = stop if stop is not None else threading.Event()
        while not stop.is_set():
            for action in self.poll():
                if on_action is not None:
                    on_action(action)
            stop.wait(poll_interval_s)

    def status(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "schema": FLEET_STATE_SCHEMA,
                "label": self.spec.label,
                "executor": self.executor_spec,
                "spec": self.spec.to_dict(),
                "workers": [record.to_dict() for record in self._records],
            }

    def down(self) -> None:
        """Terminate every worker and drop the state file."""
        with self._lock:
            for record in self._records:
                if record.proc is not None and record.proc.poll() is None:
                    record.proc.terminate()
            for record in self._records:
                if record.proc is None:
                    continue
                try:
                    record.proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    record.proc.kill()
                self._reap(record)
                record.state = "stopped"
                record.proc = None
        if self.state_path is not None:
            try:
                os.unlink(self.state_path)
            except OSError:
                pass

    # -- state file -----------------------------------------------------
    def _write_state(self) -> None:
        if self.state_path is None:
            return
        payload = json.dumps(self.status(), indent=2)
        directory = os.path.dirname(self.state_path) or "."
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_path, self.state_path)
        except OSError:
            pass  # state file is advisory; supervision continues


# ----------------------------------------------------------------------
# Out-of-process state-file operations (fleet status / fleet down)
# ----------------------------------------------------------------------
def _load_state(state_path: str) -> Dict[str, Any]:
    try:
        with open(state_path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError:
        raise ConfigurationError(
            f"no fleet state at {state_path} — is a fleet up? "
            f"(start one with 'python -m repro.parallel fleet up')"
        )
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"fleet state {state_path} is corrupt: {exc}")
    if not isinstance(data, dict) or data.get("schema") != FLEET_STATE_SCHEMA:
        raise ConfigurationError(
            f"fleet state {state_path} has unknown schema "
            f"{data.get('schema') if isinstance(data, dict) else data!r}"
        )
    return data


def _probe_state(data: Dict[str, Any]) -> Dict[str, Any]:
    """Re-verify each recorded worker against live (pid, token) pairs."""
    for worker in data.get("workers", ()):
        pid = int(worker.get("pid", 0))
        token = worker.get("start_token", "")
        if worker.get("state") in ("stopped", "failed"):
            continue
        worker["state"] = (
            "running" if pid and same_process(pid, token) else "dead"
        )
    return data


def fleet_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel fleet",
        description="Launch and supervise a self-healing worker fleet.",
    )
    sub = parser.add_subparsers(dest="action", required=True)

    up = sub.add_parser("up", help="launch a fleet and supervise it")
    up.add_argument("--spec", metavar="FILE",
                    help="FleetSpec JSON file (default: --workers N inline)")
    up.add_argument("--workers", type=int, default=2,
                    help="worker count when --spec is omitted "
                         "(default %(default)s)")
    up.add_argument("--state", metavar="FILE", default=default_state_path(),
                    help="fleet state file (default %(default)s)")
    up.add_argument("--chaos", metavar="FILE",
                    help="arm this chaos spec in every worker "
                         "(sets REPRO_CHAOS for the children)")

    status = sub.add_parser("status", help="probe the recorded fleet")
    status.add_argument("--state", metavar="FILE",
                        default=default_state_path())
    status.add_argument("--json", action="store_true",
                        help="machine-readable output")

    down = sub.add_parser("down", help="stop the recorded fleet")
    down.add_argument("--state", metavar="FILE",
                      default=default_state_path())

    args = parser.parse_args(argv)

    if args.action == "up":
        try:
            spec = (FleetSpec.from_file(args.spec) if args.spec
                    else FleetSpec(workers=args.workers))
        except ConfigurationError as exc:
            print(f"fleet up: {exc}", file=sys.stderr)
            return 2
        env = None
        if args.chaos:
            env = dict(os.environ)
            env["REPRO_CHAOS"] = os.path.abspath(args.chaos)
        supervisor = FleetSupervisor(spec, state_path=args.state, env=env)
        try:
            supervisor.up()
        except ExecutorError as exc:
            print(f"fleet up: {exc}", file=sys.stderr)
            supervisor.down()
            return 2
        print(f"repro-fleet up {spec.workers} worker(s): "
              f"{supervisor.executor_spec}", flush=True)
        try:
            supervisor.supervise(
                on_action=lambda action: print(f"repro-fleet: {action}",
                                               file=sys.stderr, flush=True))
        except KeyboardInterrupt:
            pass
        finally:
            supervisor.down()
        return 0

    if args.action == "status":
        try:
            data = _probe_state(_load_state(args.state))
        except ConfigurationError as exc:
            print(f"fleet status: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(data, indent=2))
            return 0
        print(f"fleet: {data.get('executor', '?')}")
        for worker in data.get("workers", ()):
            print(f"  worker {worker['index']}  {worker['address']:<21} "
                  f"pid {worker['pid']:<7} restarts {worker['restarts']}  "
                  f"{worker['state']}")
        return 0 if all(w.get("state") == "running"
                        for w in data.get("workers", ())) else 1

    if args.action == "down":
        try:
            data = _load_state(args.state)
        except ConfigurationError as exc:
            print(f"fleet down: {exc}", file=sys.stderr)
            return 2
        stopped = 0
        for worker in data.get("workers", ()):
            pid = int(worker.get("pid", 0))
            token = worker.get("start_token", "")
            # The token check means a recycled pid is never signalled.
            if pid and same_process(pid, token):
                try:
                    os.kill(pid, signal.SIGTERM)
                    stopped += 1
                except OSError:
                    pass
        deadline = time.monotonic() + 5.0
        for worker in data.get("workers", ()):
            pid = int(worker.get("pid", 0))
            token = worker.get("start_token", "")
            while (pid and same_process(pid, token)
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            if pid and same_process(pid, token):
                try:
                    os.kill(pid, signal.SIGKILL)
                except OSError:
                    pass
        try:
            os.unlink(args.state)
        except OSError:
            pass
        print(f"repro-fleet down: stopped {stopped} worker(s)")
        return 0

    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(fleet_main())
