"""Deterministic infrastructure chaos: kill, stall, and corrupt on cue.

:mod:`repro.faults` injects faults into the *simulated* network; this
module injects faults into the sweep *infrastructure* itself — worker
processes, the wire protocol, the shared result cache — so tests and a
CI soak can assert the self-healing layer (supervisor restarts,
executor redispatch, cache checksums) actually heals.

A :class:`ChaosSpec` is a JSON schedule in the :class:`FaultSpec`
mould: an ordered tuple of :class:`ChaosEvent` entries, each naming a
chaos kind, which fleet role it hits, and a deterministic trigger
(after N tasks, on the Nth result frame, on the Nth cache write).
Triggers count *deterministic* milestones, never wall-clock time or
heartbeat frames — chaos runs must be reproducible bit-for-bit, and
heartbeat counts depend on scheduling noise.

``worker_kill``
    The worker calls ``os._exit(137)`` after finishing its
    ``after_tasks``-th task — a crash the supervisor must notice and
    restart, and whose in-flight shard the executor must redispatch.
``worker_stall``
    The worker SIGSTOPs itself for ``duration_s`` (a detached helper
    delivers the SIGCONT).  Heartbeats stop mid-shard; the executor's
    staleness deadline fires and the shard is redispatched.
``heartbeat_drop``
    Heartbeats are suppressed for ``duration_s`` while the worker keeps
    computing — the "network ate my keepalives" case that must look
    exactly like a stall from the coordinator's side.
``frame_truncate``
    The worker's ``nth`` RESULT frame is cut mid-payload and the
    connection closed: the reader must raise a typed
    :class:`~repro.parallel.wire.WireError` and recycle the connection.
``frame_garbage``
    The worker's ``nth`` RESULT frame has its payload bytes flipped
    (header intact): the unpickle fails, the shard is redispatched.
``slow_connect``
    The worker sleeps ``duration_s`` before answering the HELLO
    handshake — exercising connect timeouts and breaker behaviour.
``cache_corrupt``
    The ``nth`` cache ``put()`` in *this* process has one payload byte
    flipped after the atomic rename — the reader's checksum must treat
    it as a miss, never return garbage.

Activation: set ``REPRO_CHAOS`` to a spec path (the CLI flag
``--chaos FILE`` does this for child processes too) and give each
fleet member a role index via ``REPRO_CHAOS_INDEX``.  The supervisor
numbers its workers 0..N-1; a process without an index is role ``-1``
(an observer — typically the coordinator), which matches no
worker-targeted event but still fires ``cache_corrupt``.  With
``REPRO_CHAOS`` unset, the hot path costs one module-global ``None``
check per seam — nothing else.
"""

import dataclasses
import json
import os
import random
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.errors import ConfigurationError

__all__ = [
    "CHAOS_KINDS",
    "ChaosEvent",
    "ChaosSpec",
    "ChaosController",
    "active_controller",
    "set_controller",
    "disable",
    "CHAOS_ENV",
    "CHAOS_INDEX_ENV",
]

#: Environment variable holding the chaos spec path.
CHAOS_ENV = "REPRO_CHAOS"
#: Environment variable holding this process's fleet role index.
CHAOS_INDEX_ENV = "REPRO_CHAOS_INDEX"

#: The closed chaos taxonomy (see module docstring and DESIGN.md §15).
CHAOS_KINDS = (
    "worker_kill",
    "worker_stall",
    "heartbeat_drop",
    "frame_truncate",
    "frame_garbage",
    "slow_connect",
    "cache_corrupt",
)

#: Kinds triggered by the task-completion counter.
_TASK_KINDS = ("worker_kill", "worker_stall", "heartbeat_drop")
#: Kinds triggered by the outbound RESULT-frame counter.
_FRAME_KINDS = ("frame_truncate", "frame_garbage")
#: Kinds that need a duration.
_NEEDS_DURATION = ("worker_stall", "heartbeat_drop", "slow_connect")

#: Exit status a chaos-killed worker dies with (mirrors SIGKILL's 137).
KILL_EXIT_STATUS = 137


def _require(condition: bool, where: str, message: str) -> None:
    if not condition:
        raise ConfigurationError(f"{where}: {message}")


def _checked_kwargs(cls, data: Mapping[str, Any], where: str) -> Dict[str, Any]:
    """``data`` as constructor kwargs, rejecting unknown fields by name."""
    if not isinstance(data, Mapping):
        raise ConfigurationError(
            f"{where}: expected a JSON object, got {type(data).__name__}"
        )
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ConfigurationError(f"{where}: unknown fields {unknown}")
    return dict(data)


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled infrastructure fault on one fleet role.

    ``target`` is the fleet role index the event arms in (workers are
    numbered 0..N-1 by the supervisor; ``cache_corrupt`` ignores it —
    it fires in whichever process performs the matching cache write).
    ``after_tasks`` triggers task-counter kinds once the role has
    completed that many tasks; ``nth`` (1-based) triggers frame and
    cache kinds on the matching counter value.  Every event fires at
    most once.
    """

    kind: str
    target: int = 0
    #: ``worker_kill``/``worker_stall``/``heartbeat_drop``: fire once
    #: the role's completed-task counter reaches this value.
    after_tasks: Optional[int] = None
    #: ``frame_truncate``/``frame_garbage``: the Nth RESULT frame
    #: (1-based); ``cache_corrupt``: the Nth cache put (1-based).
    nth: Optional[int] = None
    #: ``worker_stall``/``heartbeat_drop``/``slow_connect``: seconds.
    duration_s: Optional[float] = None

    def __post_init__(self) -> None:
        _require(self.kind in CHAOS_KINDS, "ChaosEvent.kind",
                 f"must be one of {list(CHAOS_KINDS)}, got {self.kind!r}")
        _require(isinstance(self.target, int) and self.target >= 0,
                 "ChaosEvent.target",
                 f"must be a fleet index >= 0, got {self.target!r}")

        if self.kind in _TASK_KINDS:
            _require(isinstance(self.after_tasks, int)
                     and self.after_tasks >= 1,
                     "ChaosEvent.after_tasks",
                     f"must be an int >= 1 for kind={self.kind!r}, "
                     f"got {self.after_tasks!r}")
        else:
            _require(self.after_tasks is None, "ChaosEvent.after_tasks",
                     f"only valid for kinds {list(_TASK_KINDS)}")

        if self.kind in _FRAME_KINDS or self.kind == "cache_corrupt":
            _require(isinstance(self.nth, int) and self.nth >= 1,
                     "ChaosEvent.nth",
                     f"must be an int >= 1 for kind={self.kind!r}, "
                     f"got {self.nth!r}")
        else:
            _require(self.nth is None, "ChaosEvent.nth",
                     f"only valid for kinds "
                     f"{list(_FRAME_KINDS) + ['cache_corrupt']}")

        if self.kind in _NEEDS_DURATION:
            _require(isinstance(self.duration_s, (int, float))
                     and self.duration_s > 0,
                     "ChaosEvent.duration_s",
                     f"must be positive for kind={self.kind!r}, "
                     f"got {self.duration_s!r}")
        else:
            _require(self.duration_s is None, "ChaosEvent.duration_s",
                     f"only valid for kinds {list(_NEEDS_DURATION)}")

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind}
        if self.target:
            data["target"] = self.target
        for name in ("after_tasks", "nth", "duration_s"):
            value = getattr(self, name)
            if value is not None:
                data[name] = value
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChaosEvent":
        return cls(**_checked_kwargs(cls, data, "ChaosEvent"))


@dataclass(frozen=True)
class ChaosSpec:
    """An ordered infrastructure chaos schedule — one soak as data."""

    events: Tuple[ChaosEvent, ...]
    seed: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        events = tuple(
            ChaosEvent.from_dict(e) if isinstance(e, Mapping) else e
            for e in self.events
        )
        object.__setattr__(self, "events", events)
        _require(len(events) >= 1, "ChaosSpec.events",
                 "must declare at least one chaos event")
        for event in events:
            _require(isinstance(event, ChaosEvent), "ChaosSpec.events",
                     f"entries must be ChaosEvent, got {type(event).__name__}")
        _require(isinstance(self.seed, int), "ChaosSpec.seed",
                 f"must be an int, got {self.seed!r}")
        _require(isinstance(self.label, str), "ChaosSpec.label",
                 f"must be a string, got {self.label!r}")

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "events": [event.to_dict() for event in self.events],
        }
        if self.seed:
            data["seed"] = self.seed
        if self.label:
            data["label"] = self.label
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChaosSpec":
        kwargs = _checked_kwargs(cls, data, "ChaosSpec")
        kwargs["events"] = tuple(
            ChaosEvent.from_dict(e) for e in kwargs.get("events", ())
        )
        return cls(**kwargs)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ChaosSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"chaos file is not valid JSON: {exc}")
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"chaos file must hold a JSON object, got {type(data).__name__}"
            )
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str) -> "ChaosSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


class _RealActions:
    """Process-level side effects, injectable for tests."""

    def kill(self) -> None:
        # _exit skips atexit/finally blocks — a crash, not a shutdown.
        os._exit(KILL_EXIT_STATUS)

    def stall(self, duration_s: float) -> None:
        # A detached helper delivers the SIGCONT — the stalled process
        # cannot wake itself, and the parent must not have to.
        subprocess.Popen(
            [sys.executable, "-c",
             "import os, signal, sys, time\n"
             "time.sleep(float(sys.argv[1]))\n"
             "try:\n"
             "    os.kill(int(sys.argv[2]), signal.SIGCONT)\n"
             "except ProcessLookupError:\n"
             "    pass\n",
             f"{duration_s:g}", str(os.getpid())],
            start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        os.kill(os.getpid(), signal.SIGSTOP)


class ChaosController:
    """Arms a :class:`ChaosSpec` inside one fleet process.

    The controller keeps deterministic counters (tasks completed,
    RESULT frames sent, cache puts) and fires each matching event at
    most once.  All byte-level corruption draws from a RNG seeded by
    ``(spec.seed, role index)``, so a chaos run is a pure function of
    the spec and the fleet topology.

    Thread-safe: seams are called from worker task loops, heartbeat
    threads, and executor dispatch threads.
    """

    def __init__(self, spec: ChaosSpec, index: Optional[int] = None,
                 actions=None) -> None:
        self.spec = spec
        if index is None:
            index = int(os.environ.get(CHAOS_INDEX_ENV, "-1"))
        self.index = index
        self._actions = actions if actions is not None else _RealActions()
        self._lock = threading.Lock()
        self._tasks_done = 0
        self._result_frames = 0
        self._cache_puts = 0
        self._suppress_until = 0.0
        self._fired: set = set()
        self._rng = random.Random((spec.seed << 16) ^ (index & 0xFFFF))
        #: kind -> times fired in this process (for tests/telemetry).
        self.injected: Dict[str, int] = {}

    # -- internal -------------------------------------------------------
    def _mark(self, position: int, event: ChaosEvent) -> None:
        self._fired.add(position)
        self.injected[event.kind] = self.injected.get(event.kind, 0) + 1
        self._publish(event)
        print(f"repro-chaos: injecting {event.kind} "
              f"(role {self.index})", file=sys.stderr, flush=True)

    def _publish(self, event: ChaosEvent) -> None:
        try:
            from repro.obs.telemetry import active_bus
            bus = active_bus()
        except Exception:
            bus = None
        if bus is not None:
            bus.count("chaos.injected", kind=event.kind)

    def _pending(self, kinds: Tuple[str, ...]) -> List[Tuple[int, ChaosEvent]]:
        return [
            (i, e) for i, e in enumerate(self.spec.events)
            if e.kind in kinds and i not in self._fired
            and (e.kind == "cache_corrupt" or e.target == self.index)
        ]

    # -- worker task-loop seam -----------------------------------------
    def on_task_done(self) -> None:
        """Called by the worker after each completed task."""
        fire: List[ChaosEvent] = []
        with self._lock:
            self._tasks_done += 1
            for position, event in self._pending(_TASK_KINDS):
                if self._tasks_done >= event.after_tasks:
                    self._mark(position, event)
                    fire.append(event)
        for event in fire:
            if event.kind == "heartbeat_drop":
                self._suppress_until = time.monotonic() + event.duration_s
            elif event.kind == "worker_kill":
                self._actions.kill()
            elif event.kind == "worker_stall":
                self._actions.stall(event.duration_s)

    # -- worker heartbeat seam -----------------------------------------
    def heartbeats_suppressed(self) -> bool:
        return time.monotonic() < self._suppress_until

    # -- worker connect seam -------------------------------------------
    def connect_delay_s(self) -> float:
        """Pre-HELLO delay for this connection attempt (0 when unarmed)."""
        with self._lock:
            for position, event in self._pending(("slow_connect",)):
                self._mark(position, event)
                return float(event.duration_s)
        return 0.0

    # -- wire seam ------------------------------------------------------
    def frame_action(self, is_result: bool) -> Optional[str]:
        """Mangling verdict for an outbound frame (None = send clean).

        Only RESULT frames advance the counter: heartbeat cadence is
        wall-clock-driven and would make the trigger nondeterministic.
        """
        if not is_result:
            return None
        with self._lock:
            self._result_frames += 1
            for position, event in self._pending(_FRAME_KINDS):
                if self._result_frames == event.nth:
                    self._mark(position, event)
                    return event.kind
        return None

    def garble(self, payload: bytes) -> bytes:
        """Flip a deterministic handful of payload bytes."""
        if not payload:
            return payload
        mangled = bytearray(payload)
        with self._lock:
            for _ in range(max(1, len(mangled) // 64)):
                position = self._rng.randrange(len(mangled))
                mangled[position] ^= 0xFF
        return bytes(mangled)

    # -- cache seam -----------------------------------------------------
    def on_cache_put(self, path: str, header_bytes: int) -> None:
        """Called after an atomic cache write lands at ``path``.

        ``header_bytes`` marks the start of the checksummed payload
        region — corruption flips a payload byte so the entry reads
        back as a checksum miss, never as a short file.
        """
        with self._lock:
            self._cache_puts += 1
            matched = [
                (i, e) for i, e in self._pending(("cache_corrupt",))
                if self._cache_puts == e.nth
            ]
            for position, event in matched:
                self._mark(position, event)
        if not matched:
            return
        try:
            with open(path, "r+b") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                if size <= header_bytes:
                    return
                offset = header_bytes + self._rng.randrange(size - header_bytes)
                handle.seek(offset)
                byte = handle.read(1)
                handle.seek(offset)
                handle.write(bytes((byte[0] ^ 0xFF,)))
        except OSError:
            pass


#: Sentinel: "not resolved yet" vs "resolved to None (chaos off)".
_UNRESOLVED = object()
_controller: Any = _UNRESOLVED
_resolve_lock = threading.Lock()


def active_controller() -> Optional[ChaosController]:
    """The process-wide controller, or ``None`` when chaos is off.

    First call resolves ``REPRO_CHAOS``/``REPRO_CHAOS_INDEX`` once;
    later calls are a single global load — the cost chaos-off hot
    paths pay.
    """
    global _controller
    if _controller is not _UNRESOLVED:
        return _controller
    with _resolve_lock:
        if _controller is _UNRESOLVED:
            path = os.environ.get(CHAOS_ENV, "").strip()
            _controller = ChaosController(ChaosSpec.from_file(path)) \
                if path else None
    return _controller


def set_controller(controller: Optional[ChaosController]) -> None:
    """Install (or clear, with ``None``) the process-wide controller."""
    global _controller
    _controller = controller


def disable() -> None:
    """Forget any resolved controller; next access re-reads the env."""
    global _controller
    _controller = _UNRESOLVED
