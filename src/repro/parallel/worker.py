"""The remote sweep worker: ``python -m repro.parallel worker``.

A worker is one process that listens on ``HOST:PORT``, accepts one
coordinator connection at a time, and executes the shards it is sent
— tasks in order, results streamed back per shard.  While a shard
runs, a background thread emits ``HEARTBEAT`` frames so the
coordinator can tell a slow shard from a dead worker.

Startup prints exactly one line to stdout::

    repro-worker listening on 127.0.0.1:40913 pid=12345

so launchers (tests, fleet scripts) binding port ``0`` can scrape the
kernel-assigned port.  The handshake refuses clients running a
different source tree (see :mod:`repro.parallel.wire`), keeping
cross-revision result mixing structurally impossible.
"""

import argparse
import json
import os
import pickle
import socket
import sys
import threading
import time
from typing import List, Optional

from repro.parallel import chaos, wire
from repro.parallel.task import run_task_timed

__all__ = ["main", "serve_worker"]

#: Seconds between heartbeat frames while a shard executes.
HEARTBEAT_INTERVAL_S = 1.0


def _rss_kb() -> float:
    """Peak resident set size in KiB (0.0 where unavailable)."""
    try:
        import resource
    except ImportError:  # non-POSIX
        return 0.0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB already; macOS reports bytes.
    return float(usage) / 1024.0 if sys.platform == "darwin" else float(usage)


class _ShardStats:
    """Live counters the heartbeat thread snapshots into STATS payloads.

    The shard loop (main thread) writes, the heartbeat thread reads;
    a lock keeps each payload internally consistent.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.time()
        self._tasks_done = 0
        self._in_flight = 0
        self._queue_depth = 0

    def start_shard(self, queue_depth: int) -> None:
        with self._lock:
            self._queue_depth = queue_depth
            self._in_flight = 0

    def start_task(self) -> None:
        with self._lock:
            self._in_flight = 1
            self._queue_depth = max(0, self._queue_depth - 1)

    def finish_task(self) -> None:
        with self._lock:
            self._in_flight = 0
            self._tasks_done += 1

    def finish_shard(self) -> None:
        with self._lock:
            self._in_flight = 0
            self._queue_depth = 0

    def payload(self, interval_s: float) -> dict:
        now = time.time()
        with self._lock:
            uptime_s = max(now - self._started, 1e-9)
            return {
                "pid": os.getpid(),
                "tasks_done": self._tasks_done,
                "in_flight": self._in_flight,
                "queue_depth": self._queue_depth,
                "tasks_per_s": self._tasks_done / uptime_s,
                "rss_kb": _rss_kb(),
                "uptime_s": uptime_s,
                "interval_s": interval_s,
            }


class _Heartbeat:
    """Emit HEARTBEAT ``STATS`` frames on ``sock`` until stopped.

    One frame goes out immediately on ``__enter__`` so even a shard
    that finishes inside the first interval ships at least one STATS
    payload to the coordinator's telemetry bus.
    """

    def __init__(self, sock: socket.socket, send_lock: threading.Lock,
                 interval_s: float, stats: "_ShardStats") -> None:
        self._sock = sock
        self._lock = send_lock
        self._interval_s = interval_s
        self._stats = stats
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> "_Heartbeat":
        self._beat()
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=self._interval_s * 2)

    def _beat(self) -> bool:
        controller = chaos.active_controller()
        if controller is not None and controller.heartbeats_suppressed():
            # Chaos seam: the worker keeps computing but its keepalives
            # vanish — indistinguishable from a stall to the peer.
            return True
        payload = json.dumps(
            self._stats.payload(self._interval_s)
        ).encode("utf-8")
        try:
            wire.send_frame(self._sock, wire.MSG_HEARTBEAT, payload,
                            lock=self._lock)
        except OSError:
            return False  # connection gone; the main loop will notice
        return True

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            if not self._beat():
                return


def _handle_connection(conn: socket.socket, heartbeat_s: float,
                       log) -> int:
    """Serve one coordinator connection; returns shards executed."""
    send_lock = threading.Lock()
    local_hello = wire.hello_payload()
    msg_type, payload = wire.recv_frame(conn, timeout_s=30.0)
    if msg_type != wire.MSG_HELLO:
        wire.send_json(conn, wire.MSG_REFUSED,
                       {"error": "expected HELLO"}, lock=send_lock)
        return 0
    problem = wire.check_hello(local_hello, wire.recv_json(payload),
                               who="client")
    if problem is not None:
        log(f"refusing client: {problem}")
        wire.send_json(conn, wire.MSG_REFUSED, {"error": problem},
                       lock=send_lock)
        return 0
    controller = chaos.active_controller()
    if controller is not None:
        delay_s = controller.connect_delay_s()
        if delay_s > 0:
            time.sleep(delay_s)  # chaos seam: a worker slow to handshake
    wire.send_json(conn, wire.MSG_HELLO, local_hello, lock=send_lock)

    stats = _ShardStats()
    shards_done = 0
    while True:
        conn.settimeout(None)  # idle between shards is fine
        try:
            msg_type, payload = wire.recv_frame(conn)
        except wire.WireError:
            return shards_done  # coordinator went away
        if msg_type == wire.MSG_SHUTDOWN:
            return shards_done
        if msg_type != wire.MSG_SHARD:
            wire.send_json(conn, wire.MSG_REFUSED,
                           {"error": f"unexpected message {msg_type}"},
                           lock=send_lock)
            return shards_done
        try:
            shard_id, tasks = pickle.loads(payload)
        except Exception as exc:
            wire.send_json(conn, wire.MSG_REFUSED,
                           {"error": f"undecodable shard: {exc}"},
                           lock=send_lock)
            return shards_done
        log(f"shard {shard_id}: {len(tasks)} task(s)")
        stats.start_shard(len(tasks))
        with _Heartbeat(conn, send_lock, heartbeat_s, stats):
            try:
                # Task-by-task (not run_shard) so a mid-shard crash of
                # this process has already shipped nothing partial:
                # results leave only as one complete RESULT frame.
                values = []
                for task in tasks:
                    stats.start_task()
                    values.append(run_task_timed(task))
                    stats.finish_task()
                    if controller is not None:
                        # Chaos seam: kill/stall/heartbeat-drop trigger
                        # on the completed-task counter.
                        controller.on_task_done()
            except Exception as exc:
                stats.finish_shard()
                wire.send_json(
                    conn, wire.MSG_SHARD_ERR,
                    {"shard_id": shard_id,
                     "error": f"{type(exc).__name__}: {exc}"},
                    lock=send_lock,
                )
                shards_done += 1
                continue
            stats.finish_shard()
        wire.send_pickle(conn, wire.MSG_RESULT, (shard_id, values),
                         lock=send_lock)
        shards_done += 1


def serve_worker(host: str, port: int, once: bool = False,
                 heartbeat_s: float = HEARTBEAT_INTERVAL_S,
                 quiet: bool = False) -> int:
    """Listen on ``host:port`` and serve coordinator connections."""
    def log(message: str) -> None:
        if not quiet:
            print(f"repro-worker: {message}", file=sys.stderr, flush=True)

    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        server.bind((host, port))
        server.listen(4)
        bound_host, bound_port = server.getsockname()[:2]
        print(f"repro-worker listening on {bound_host}:{bound_port} "
              f"pid={os.getpid()}", flush=True)
        while True:
            conn, peer = server.accept()
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            log(f"connection from {peer[0]}:{peer[1]}")
            try:
                shards = _handle_connection(conn, heartbeat_s, log)
                log(f"connection closed after {shards} shard(s)")
            except wire.WireError as exc:
                log(f"connection error: {exc}")
            finally:
                try:
                    conn.close()
                except OSError:
                    pass
            if once:
                return 0
    except KeyboardInterrupt:
        return 0
    finally:
        server.close()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel worker",
        description="Serve sweep shards to a SocketExecutor coordinator. "
                    "SECURITY: the protocol deserializes pickle — listen "
                    "on loopback or a trusted network only.",
    )
    parser.add_argument("--listen", metavar="HOST:PORT",
                        default="127.0.0.1:0",
                        help="bind address (default 127.0.0.1:0 — port 0 "
                             "lets the kernel pick; the chosen port is "
                             "printed on stdout)")
    parser.add_argument("--once", action="store_true",
                        help="exit after the first connection closes")
    parser.add_argument("--heartbeat-s", type=float,
                        default=HEARTBEAT_INTERVAL_S,
                        help="seconds between liveness frames while a "
                             "shard runs (default %(default)s)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-connection logging on stderr")
    args = parser.parse_args(argv)

    from repro.parallel.executors import parse_socket_addresses

    try:
        ((host, port),) = parse_socket_addresses(args.listen)
    except Exception:
        # parse_socket_addresses rejects port 0; allow it here.
        host, _, port_text = args.listen.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            parser.error(f"--listen must be HOST:PORT, got {args.listen!r}")
        if not host or not 0 <= port < 65536:
            parser.error(f"--listen must be HOST:PORT, got {args.listen!r}")
    return serve_worker(host, port, once=args.once,
                        heartbeat_s=args.heartbeat_s, quiet=args.quiet)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
