"""``python -m repro.parallel`` — the sweep service command line.

Subcommands::

    worker --listen HOST:PORT   serve shards to a SocketExecutor
    submit workload.json        run a workload, stream JSONL results
    serve  --listen HOST:PORT   accept remote workload submissions
    cache  stats|gc|clear       administer the shared result store
    fleet  up|status|down       launch and supervise a worker fleet
"""

import sys
from typing import List, Optional

_USAGE = """\
usage: python -m repro.parallel COMMAND ...

commands:
  worker   serve sweep shards to a SocketExecutor coordinator
  submit   execute a workload JSON file, streaming JSONL results
  serve    accept workload submissions over TCP
  cache    inspect/maintain the shared result store (stats|gc|clear)
  fleet    launch/supervise a self-healing worker fleet (up|status|down)

run `python -m repro.parallel COMMAND --help` for details.
"""


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE, end="")
        return 0 if argv else 2
    command, rest = argv[0], argv[1:]
    if command == "worker":
        from repro.parallel.worker import main as worker_main

        return worker_main(rest)
    if command == "submit":
        from repro.parallel.service import submit_main

        return submit_main(rest)
    if command == "serve":
        from repro.parallel.service import serve_main

        return serve_main(rest)
    if command == "cache":
        from repro.parallel.service import cache_main

        return cache_main(rest)
    if command == "fleet":
        from repro.parallel.supervisor import fleet_main

        return fleet_main(rest)
    print(f"python -m repro.parallel: unknown command {command!r}\n",
          file=sys.stderr)
    print(_USAGE, end="", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
