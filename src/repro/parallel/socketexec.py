"""Dispatch sweep shards to remote workers over TCP — self-healingly.

A :class:`SocketExecutor` holds a list of worker addresses (each a
``python -m repro.parallel worker`` process).  ``run_shards`` opens
one connection per worker and pulls shards from a shared dispatch
state, so a fast worker naturally takes more shards than a slow one —
load balance never affects results, which the coordinator reassembles
by task index.

Failure containment goes beyond the local pool's (PR 6) passive model:

* **Redispatch** — a shard in flight on a worker that dies, stops
  heartbeating, or garbles its result frame is re-queued and re-run on
  a healthy peer, up to ``redispatch_budget`` extra dispatches.  Only
  when that budget is spent does the shard surface as a failed
  :class:`~repro.parallel.executors.ShardOutcome` for the coordinator
  to isolate locally — so infrastructure flakes never consume the
  coordinator's per-task retry budget.
* **Reconnect** — a broken connection is retried against the same
  address with exponential backoff (a supervisor-restarted worker
  comes back on its old port), bounded by ``reconnect_attempts``.
* **Circuit breaker** — per-address consecutive failures past
  ``breaker_threshold`` open the breaker: no dispatch to that worker
  until ``breaker_cooldown_s`` has passed, then a single half-open
  probe decides.  Breakers persist across ``run_shards`` calls, so a
  flapping worker stays quarantined between sweeps.
* **Hedged dispatch** (optional, ``hedge=True`` or ``REPRO_HEDGE=1``)
  — once the pending queue is empty, an idle worker re-runs a
  straggler's shard; the first result wins.  Results are bit-identical
  by construction (tasks carry derived seeds), so hedging can never
  change a sweep's output, only its tail latency.

Worker-*reported* task errors (``SHARD_ERR``) are not infrastructure
failures: they are delivered as-is, exactly once, and never redispatched
— a poison task must not burn the fleet's redispatch budget.

Only a sweep where *zero* workers ever connected — or where every
connection died with shards unfinished — raises
:class:`~repro.core.errors.ExecutorError`; the coordinator answers by
degrading to the local process pool with a one-line warning.
"""

import collections
import os
import pickle
import queue
import socket
import threading
import time
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.errors import ExecutorError
from repro.obs.telemetry import active_bus
from repro.parallel import wire
from repro.parallel.executors import (
    Executor,
    LocalPoolExecutor,
    ShardOutcome,
)
from repro.parallel.task import SimTask

__all__ = ["CircuitBreaker", "SocketExecutor", "hedge_enabled_by_env"]

#: recv deadline between frames while a shard runs; the worker
#: heartbeats every second, so 10 missed beats means it is gone.
HEARTBEAT_TIMEOUT_S = 10.0

#: Extra dispatches an infrastructure-failed shard may consume before
#: it is surfaced to the coordinator as a failed outcome.
REDISPATCH_BUDGET = 2

#: Consecutive per-address failures that open the circuit breaker.
BREAKER_THRESHOLD = 3
#: Seconds an open breaker blocks dispatch before a half-open probe.
BREAKER_COOLDOWN_S = 2.0

#: Reconnect attempts per address after a mid-run disconnect.
RECONNECT_ATTEMPTS = 10
RECONNECT_BACKOFF_S = 0.2
RECONNECT_BACKOFF_CAP_S = 2.0

#: Set to 1/on to enable hedged dispatch for straggler shards.
HEDGE_ENV = "REPRO_HEDGE"


def hedge_enabled_by_env() -> bool:
    return os.environ.get(HEDGE_ENV, "").lower() in {"1", "on", "yes", "true"}


class CircuitBreaker:
    """Per-worker dispatch gate: stop hammering a flapping address.

    Closed (normal) → ``threshold`` consecutive failures → open: every
    :meth:`allows` is ``False`` until ``cooldown_s`` passes, after
    which one caller gets a half-open probe.  A failure while open
    re-arms the cooldown; a success closes the breaker.
    """

    def __init__(self, threshold: int = BREAKER_THRESHOLD,
                 cooldown_s: float = BREAKER_COOLDOWN_S,
                 clock=time.monotonic) -> None:
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: Optional[float] = None
        self.trips = 0

    @property
    def open(self) -> bool:
        with self._lock:
            return self._opened_at is not None

    def allows(self) -> bool:
        """May the caller dispatch (or probe) this worker right now?"""
        with self._lock:
            if self._opened_at is None:
                return True
            return self._clock() - self._opened_at >= self.cooldown_s

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None

    def record_failure(self) -> bool:
        """Count one failure; returns True when this one *trips* it open."""
        with self._lock:
            self._failures += 1
            if self._opened_at is not None:
                self._opened_at = self._clock()  # failed half-open probe
                return False
            if self._failures >= self.threshold:
                self._opened_at = self._clock()
                self.trips += 1
                return True
            return False


class _FleetRun:
    """Shared dispatch state for one ``run_shards`` call.

    Tracks, under one lock, which shards are pending / in flight / and
    delivered, plus per-shard dispatch counts for the redispatch budget
    and the hedged set.  Exactly one outcome is ever delivered per
    shard — hedge twins and late duplicates are dropped here.
    """

    def __init__(self, shards, max_dispatches: int, hedge: bool) -> None:
        self.shards = shards
        self.max_dispatches = max_dispatches
        self.hedge = hedge
        self.lock = threading.Lock()
        self.pending: "collections.deque" = collections.deque(
            range(len(shards)))
        self.dispatches = [0] * len(shards)
        self.in_flight: Dict[int, Set[str]] = {}
        self.hedged: Set[int] = set()
        self.delivered: Set[int] = set()
        self.outcomes: "queue.Queue" = queue.Queue()
        self.aborted = False

    def finished(self) -> bool:
        with self.lock:
            return len(self.delivered) == len(self.shards)

    def claim(self, worker_id: str) -> Optional[Tuple[int, bool]]:
        """Next shard for this worker as ``(shard_id, is_hedge)``."""
        with self.lock:
            while self.pending:
                shard_id = self.pending.popleft()
                if shard_id in self.delivered:
                    continue
                self.dispatches[shard_id] += 1
                self.in_flight.setdefault(shard_id, set()).add(worker_id)
                return shard_id, False
            if self.hedge:
                for shard_id, owners in self.in_flight.items():
                    if (shard_id in self.delivered
                            or shard_id in self.hedged
                            or worker_id in owners
                            or not owners):
                        continue
                    self.hedged.add(shard_id)
                    self.dispatches[shard_id] += 1
                    owners.add(worker_id)
                    return shard_id, True
            return None

    def deliver(self, shard_id: int, outcome: ShardOutcome,
                worker_id: str) -> bool:
        """Publish an outcome; False when a twin already delivered it."""
        with self.lock:
            self.in_flight.get(shard_id, set()).discard(worker_id)
            if shard_id in self.delivered:
                return False
            self.delivered.add(shard_id)
            self.outcomes.put((shard_id, outcome))
            return True

    def release(self, shard_id: int, worker_id: str, error: str) -> str:
        """A dispatch failed under ``worker_id``: requeue, fail, or drop.

        Returns ``"requeued"`` (budget left: a peer will re-run it),
        ``"failed"`` (budget spent: a failed outcome was delivered), or
        ``"dropped"`` (a hedge twin is still running it, or it already
        delivered — nothing to do).
        """
        with self.lock:
            self.in_flight.get(shard_id, set()).discard(worker_id)
            if shard_id in self.delivered:
                return "dropped"
            if self.in_flight.get(shard_id):
                return "dropped"  # a hedge twin is still on it
            if self.dispatches[shard_id] >= self.max_dispatches:
                self.delivered.add(shard_id)
                self.outcomes.put((shard_id, ShardOutcome(error=error)))
                return "failed"
            self.pending.append(shard_id)
            return "requeued"


class SocketExecutor(Executor):
    """Run shards on remote worker processes over the wire protocol."""

    name = "socket"

    #: Even a one-shard sweep must cross the wire: running it inline
    #: would silently mask an unreachable or broken fleet.
    inline_when_serial = False

    def __init__(
        self,
        addresses: List[Tuple[str, int]],
        connect_timeout_s: float = 5.0,
        heartbeat_timeout_s: float = HEARTBEAT_TIMEOUT_S,
        redispatch_budget: int = REDISPATCH_BUDGET,
        hedge: Optional[bool] = None,
        breaker_threshold: int = BREAKER_THRESHOLD,
        breaker_cooldown_s: float = BREAKER_COOLDOWN_S,
        reconnect_attempts: int = RECONNECT_ATTEMPTS,
        reconnect_backoff_s: float = RECONNECT_BACKOFF_S,
    ) -> None:
        if not addresses:
            raise ExecutorError("socket executor needs at least one worker")
        self.addresses = list(addresses)
        self.connect_timeout_s = connect_timeout_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.redispatch_budget = max(0, int(redispatch_budget))
        self.hedge = hedge_enabled_by_env() if hedge is None else bool(hedge)
        self.reconnect_attempts = max(1, int(reconnect_attempts))
        self.reconnect_backoff_s = reconnect_backoff_s
        self._isolation = LocalPoolExecutor()
        #: Breakers persist across run_shards calls: a worker flapping
        #: in sweep N starts sweep N+1 quarantined until its cooldown.
        self._breakers: Dict[str, CircuitBreaker] = {
            f"{host}:{port}": CircuitBreaker(breaker_threshold,
                                             breaker_cooldown_s)
            for host, port in self.addresses
        }

    def shard_count(self, workers: int, nmisses: int) -> int:
        # At least one shard per worker; more when the caller asked
        # for more parallelism than there are workers (shards queue up
        # and drain by worker speed).
        return min(max(workers, len(self.addresses)), nmisses)

    def breaker(self, worker_id: str) -> CircuitBreaker:
        """The circuit breaker guarding ``worker_id`` (``host:port``)."""
        return self._breakers[worker_id]

    # ------------------------------------------------------------------
    def run_shards(
        self,
        shards: List[List[SimTask]],
        task_timeout_s: Optional[float] = None,
    ) -> Iterator[Tuple[int, ShardOutcome]]:
        state = _FleetRun(shards, 1 + self.redispatch_budget, self.hedge)
        status: "queue.Queue" = queue.Queue()
        threads = [
            threading.Thread(
                target=self._serve_address,
                args=(address, state, status, task_timeout_s),
                daemon=True,
            )
            for address in self.addresses
        ]
        for thread in threads:
            thread.start()

        # Fail loudly if the whole fleet is unreachable: every address
        # reports its first handshake outcome exactly once.
        connected = 0
        connect_errors = []
        for _ in self.addresses:
            ok, address, error = status.get()
            if ok:
                connected += 1
            else:
                connect_errors.append(f"{address[0]}:{address[1]}: {error}")
        if not connected:
            state.aborted = True
            raise ExecutorError(
                "no socket worker reachable — start workers with "
                "'python -m repro.parallel worker --listen HOST:PORT' "
                "(" + "; ".join(connect_errors) + ")"
            )

        delivered = 0
        while delivered < len(shards):
            try:
                shard_index, outcome = state.outcomes.get(timeout=0.2)
            except queue.Empty:
                if any(thread.is_alive() for thread in threads):
                    continue
                # Every connection died with work unfinished.  Raising
                # (rather than yielding failed outcomes) lets the
                # coordinator degrade the *rest of the sweep* to the
                # local pool in one step instead of isolating tasks
                # one by one against a fleet that is gone.
                state.aborted = True
                raise ExecutorError(
                    f"socket fleet lost mid-sweep: every worker "
                    f"connection died with {len(shards) - delivered} "
                    f"shard(s) unfinished"
                )
            delivered += 1
            yield shard_index, outcome

    def run_one(self, task, task_timeout_s=None):
        """Isolation re-runs happen *locally*, in a one-task pool.

        The remote path just failed for this task's shard; retrying it
        over the same wire would conflate worker health with task
        health.  The local pool gives exact timeout enforcement and
        crash containment, matching the ``process`` backend.
        """
        return self._isolation.run_one(task, task_timeout_s)

    # ------------------------------------------------------------------
    def _serve_address(self, address, state: _FleetRun, status,
                       task_timeout_s) -> None:
        """One worker's dispatch loop: connect, claim, dispatch, heal."""
        worker_id = f"{address[0]}:{address[1]}"
        breaker = self._breakers[worker_id]
        bus = active_bus()
        conn: Optional[socket.socket] = None
        reported = False
        reconnects = 0
        try:
            while not state.finished() and not state.aborted:
                if conn is None:
                    if not breaker.allows():
                        if not reported:
                            status.put((False, address, "circuit open"))
                            reported = True
                        time.sleep(0.05)
                        continue
                    try:
                        conn = self._connect(address)
                    except (OSError, wire.WireError) as exc:
                        if not reported:
                            # First connect failed: report and give up
                            # this address — run_shards fast-fails a
                            # fully unreachable fleet off these reports.
                            status.put((False, address, str(exc)))
                            reported = True
                            return
                        if breaker.record_failure() and bus is not None:
                            bus.count("executor.breaker_trips",
                                      worker=worker_id)
                        reconnects += 1
                        if reconnects >= self.reconnect_attempts:
                            return  # address is gone for good
                        time.sleep(min(
                            self.reconnect_backoff_s * (2 ** (reconnects - 1)),
                            RECONNECT_BACKOFF_CAP_S,
                        ))
                        continue
                    breaker.record_success()
                    if not reported:
                        status.put((True, address, None))
                        reported = True
                claim = state.claim(worker_id)
                if claim is None:
                    if state.finished():
                        break
                    time.sleep(0.02)  # stragglers in flight elsewhere
                    continue
                shard_id, is_hedge = claim
                if is_hedge and bus is not None:
                    bus.count("executor.hedges")
                outcome, alive, requeueable = self._dispatch(
                    conn, shard_id, state.shards[shard_id], task_timeout_s,
                    worker_id=worker_id,
                )
                if alive:
                    breaker.record_success()
                    state.deliver(shard_id, outcome, worker_id)
                    continue
                # Connection is unusable from here on.
                try:
                    conn.close()
                except OSError:
                    pass
                conn = None
                if not requeueable:
                    # Shard deadline blown: every peer would blow it
                    # too — surface it for local isolation instead of
                    # burning the redispatch budget on a lost cause.
                    state.deliver(shard_id, outcome, worker_id)
                    continue
                if breaker.record_failure() and bus is not None:
                    bus.count("executor.breaker_trips", worker=worker_id)
                disposition = state.release(shard_id, worker_id,
                                            outcome.error or "worker failed")
                if disposition == "requeued" and bus is not None:
                    bus.count("executor.redispatches")
            if conn is not None:
                try:
                    wire.send_frame(conn, wire.MSG_SHUTDOWN)
                except OSError:
                    pass
        finally:
            if not reported:
                status.put((False, address, "dispatch thread exited"))
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass

    def _connect(self, address) -> socket.socket:
        conn = socket.create_connection(address,
                                        timeout=self.connect_timeout_s)
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        local_hello = wire.hello_payload()
        wire.send_json(conn, wire.MSG_HELLO, local_hello)
        msg_type, payload = wire.recv_frame(
            conn, timeout_s=self.connect_timeout_s
        )
        if msg_type == wire.MSG_REFUSED:
            raise wire.WireError(
                f"worker refused: {wire.recv_json(payload).get('error')}"
            )
        if msg_type != wire.MSG_HELLO:
            raise wire.WireError(f"expected HELLO, got message {msg_type}")
        problem = wire.check_hello(local_hello, wire.recv_json(payload),
                                   who="worker")
        if problem is not None:
            raise wire.WireError(problem)
        return conn

    def _dispatch(self, conn, shard_index, shard, task_timeout_s,
                  worker_id: str = "") -> Tuple[ShardOutcome, bool, bool]:
        """Send one shard and await its outcome.

        Returns ``(outcome, connection_still_usable, requeueable)``.
        ``requeueable`` distinguishes infrastructure failures (dead
        socket, truncated/garbled frame, protocol violation — a healthy
        peer may well succeed) from a blown shard deadline (a peer
        would blow it too).  Heartbeats keep the per-frame recv
        deadline alive; the absolute shard deadline (``task_timeout_s``
        scaled by shard length, matching the local pool) is enforced on
        top.  STATS heartbeat payloads are forwarded to the telemetry
        bus when the plane is on — purely observational, never part of
        the outcome.
        """
        bus = active_bus()
        deadline = None
        if task_timeout_s is not None:
            deadline = time.monotonic() + task_timeout_s * (len(shard) + 1)
        try:
            wire.send_pickle(conn, wire.MSG_SHARD, (shard_index, shard))
            while True:
                wait_s = self.heartbeat_timeout_s
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return ShardOutcome(error=(
                            f"shard timed out after "
                            f"{task_timeout_s * (len(shard) + 1):g}s "
                            f"(task_timeout_s={task_timeout_s:g})"
                        )), False, False
                    wait_s = min(wait_s, remaining)
                msg_type, payload = wire.recv_frame(conn, timeout_s=wait_s)
                if msg_type == wire.MSG_HEARTBEAT:
                    if bus is not None and payload:
                        try:
                            stats = wire.recv_json(payload)
                        except wire.WireError:
                            stats = None  # legacy/corrupt beat: liveness only
                        if isinstance(stats, dict):
                            bus.publish_worker(worker_id, stats)
                    continue
                if msg_type == wire.MSG_RESULT:
                    try:
                        result_id, values = pickle.loads(payload)
                    except Exception as exc:
                        # A garbled payload under an intact header can
                        # raise nearly anything from pickle.loads —
                        # all of it means "cannot trust this connection".
                        return ShardOutcome(
                            error=f"undecodable RESULT frame: {exc}"
                        ), False, True
                    if result_id != shard_index:
                        return ShardOutcome(error=(
                            f"worker answered shard {result_id}, "
                            f"expected {shard_index}"
                        )), False, True
                    return ShardOutcome(values=values), True, False
                if msg_type == wire.MSG_SHARD_ERR:
                    # A task raised *on* the worker: task failure, not
                    # infrastructure — deliver once, never redispatch.
                    body = wire.recv_json(payload)
                    return ShardOutcome(
                        error=str(body.get("error", "unknown worker error"))
                    ), True, False
                if msg_type == wire.MSG_REFUSED:
                    return ShardOutcome(
                        error=f"worker refused shard: "
                              f"{wire.recv_json(payload).get('error')}"
                    ), False, True
                return ShardOutcome(
                    error=f"unexpected message {msg_type} from worker"
                ), False, True
        except (OSError, wire.WireError, pickle.PickleError) as exc:
            return ShardOutcome(
                error=f"socket worker failed mid-shard: {exc}"
            ), False, True
