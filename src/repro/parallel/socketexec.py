"""Dispatch sweep shards to remote workers over TCP.

A :class:`SocketExecutor` holds a list of worker addresses (each a
``python -m repro.parallel worker`` process).  ``run_shards`` opens
one connection per worker and pulls shards from a shared queue, so a
fast worker naturally takes more shards than a slow one — load
balance never affects results, which the coordinator reassembles by
task index.

Failure containment mirrors the local pool: a worker that dies
mid-shard, stops heartbeating, or blows the scaled shard deadline
costs only that shard (reported as a failed
:class:`~repro.parallel.executors.ShardOutcome`; the coordinator
re-runs its tasks in local isolation), and its remaining queue share
is absorbed by surviving workers.  Only a sweep with *zero* reachable
workers raises — silent degradation to local execution would make a
broken fleet look healthy.
"""

import pickle
import queue
import socket
import threading
import time
from typing import Iterator, List, Optional, Tuple

from repro.core.errors import ExecutorError
from repro.obs.telemetry import active_bus
from repro.parallel import wire
from repro.parallel.executors import (
    Executor,
    LocalPoolExecutor,
    ShardOutcome,
)
from repro.parallel.task import SimTask

__all__ = ["SocketExecutor"]

#: recv deadline between frames while a shard runs; the worker
#: heartbeats every second, so 10 missed beats means it is gone.
HEARTBEAT_TIMEOUT_S = 10.0


class SocketExecutor(Executor):
    """Run shards on remote worker processes over the wire protocol."""

    name = "socket"

    #: Even a one-shard sweep must cross the wire: running it inline
    #: would silently mask an unreachable or broken fleet.
    inline_when_serial = False

    def __init__(
        self,
        addresses: List[Tuple[str, int]],
        connect_timeout_s: float = 5.0,
        heartbeat_timeout_s: float = HEARTBEAT_TIMEOUT_S,
    ) -> None:
        if not addresses:
            raise ExecutorError("socket executor needs at least one worker")
        self.addresses = list(addresses)
        self.connect_timeout_s = connect_timeout_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self._isolation = LocalPoolExecutor()

    def shard_count(self, workers: int, nmisses: int) -> int:
        # At least one shard per worker; more when the caller asked
        # for more parallelism than there are workers (shards queue up
        # and drain by worker speed).
        return min(max(workers, len(self.addresses)), nmisses)

    # ------------------------------------------------------------------
    def run_shards(
        self,
        shards: List[List[SimTask]],
        task_timeout_s: Optional[float] = None,
    ) -> Iterator[Tuple[int, ShardOutcome]]:
        pending: "queue.Queue" = queue.Queue()
        for shard_index, shard in enumerate(shards):
            pending.put((shard_index, shard))
        outcomes: "queue.Queue" = queue.Queue()
        status: "queue.Queue" = queue.Queue()
        threads = [
            threading.Thread(
                target=self._serve_address,
                args=(address, pending, outcomes, status, task_timeout_s),
                daemon=True,
            )
            for address in self.addresses
        ]
        for thread in threads:
            thread.start()

        # Fail loudly if the whole fleet is unreachable: every address
        # reports its handshake outcome exactly once.
        connected = 0
        connect_errors = []
        for _ in self.addresses:
            ok, address, error = status.get()
            if ok:
                connected += 1
            else:
                connect_errors.append(f"{address[0]}:{address[1]}: {error}")
        if not connected:
            raise ExecutorError(
                "no socket worker reachable — start workers with "
                "'python -m repro.parallel worker --listen HOST:PORT' "
                "(" + "; ".join(connect_errors) + ")"
            )

        delivered = 0
        while delivered < len(shards):
            try:
                shard_index, outcome = outcomes.get(timeout=0.2)
            except queue.Empty:
                if any(thread.is_alive() for thread in threads):
                    continue
                # Every connection died; whatever is still queued can
                # only be isolated locally by the coordinator.
                try:
                    while True:
                        shard_index, _ = pending.get_nowait()
                        yield shard_index, ShardOutcome(
                            error="every socket worker connection died"
                        )
                        delivered += 1
                except queue.Empty:
                    pass
                if delivered < len(shards):  # pragma: no cover - defensive
                    raise ExecutorError(
                        "socket executor lost track of "
                        f"{len(shards) - delivered} shard(s)"
                    )
                return
            delivered += 1
            yield shard_index, outcome

    def run_one(self, task, task_timeout_s=None):
        """Isolation re-runs happen *locally*, in a one-task pool.

        The remote path just failed for this task's shard; retrying it
        over the same wire would conflate worker health with task
        health.  The local pool gives exact timeout enforcement and
        crash containment, matching the ``process`` backend.
        """
        return self._isolation.run_one(task, task_timeout_s)

    # ------------------------------------------------------------------
    def _serve_address(self, address, pending, outcomes, status,
                       task_timeout_s) -> None:
        """One worker connection: pull shards until the queue drains."""
        try:
            conn = self._connect(address)
        except (OSError, wire.WireError) as exc:
            status.put((False, address, str(exc)))
            return
        status.put((True, address, None))
        try:
            while True:
                try:
                    shard_index, shard = pending.get_nowait()
                except queue.Empty:
                    break
                outcome, alive = self._dispatch(
                    conn, shard_index, shard, task_timeout_s,
                    worker_id=f"{address[0]}:{address[1]}",
                )
                outcomes.put((shard_index, outcome))
                if not alive:
                    return  # connection unusable; peers drain the queue
            try:
                wire.send_frame(conn, wire.MSG_SHUTDOWN)
            except OSError:
                pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _connect(self, address) -> socket.socket:
        conn = socket.create_connection(address,
                                        timeout=self.connect_timeout_s)
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        local_hello = wire.hello_payload()
        wire.send_json(conn, wire.MSG_HELLO, local_hello)
        msg_type, payload = wire.recv_frame(
            conn, timeout_s=self.connect_timeout_s
        )
        if msg_type == wire.MSG_REFUSED:
            raise wire.WireError(
                f"worker refused: {wire.recv_json(payload).get('error')}"
            )
        if msg_type != wire.MSG_HELLO:
            raise wire.WireError(f"expected HELLO, got message {msg_type}")
        problem = wire.check_hello(local_hello, wire.recv_json(payload),
                                   who="worker")
        if problem is not None:
            raise wire.WireError(problem)
        return conn

    def _dispatch(self, conn, shard_index, shard, task_timeout_s,
                  worker_id: str = "") -> Tuple[ShardOutcome, bool]:
        """Send one shard and await its outcome.

        Returns ``(outcome, connection_still_usable)``.  Heartbeats
        keep the per-frame recv deadline alive; the absolute shard
        deadline (``task_timeout_s`` scaled by shard length, matching
        the local pool) is enforced on top.  STATS heartbeat payloads
        are forwarded to the telemetry bus when the plane is on —
        purely observational, never part of the outcome.
        """
        bus = active_bus()
        deadline = None
        if task_timeout_s is not None:
            deadline = time.monotonic() + task_timeout_s * (len(shard) + 1)
        try:
            wire.send_pickle(conn, wire.MSG_SHARD, (shard_index, shard))
            while True:
                wait_s = self.heartbeat_timeout_s
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return ShardOutcome(error=(
                            f"shard timed out after "
                            f"{task_timeout_s * (len(shard) + 1):g}s "
                            f"(task_timeout_s={task_timeout_s:g})"
                        )), False
                    wait_s = min(wait_s, remaining)
                msg_type, payload = wire.recv_frame(conn, timeout_s=wait_s)
                if msg_type == wire.MSG_HEARTBEAT:
                    if bus is not None and payload:
                        try:
                            stats = wire.recv_json(payload)
                        except wire.WireError:
                            stats = None  # legacy/corrupt beat: liveness only
                        if isinstance(stats, dict):
                            bus.publish_worker(worker_id, stats)
                    continue
                if msg_type == wire.MSG_RESULT:
                    result_id, values = pickle.loads(payload)
                    if result_id != shard_index:
                        return ShardOutcome(error=(
                            f"worker answered shard {result_id}, "
                            f"expected {shard_index}"
                        )), False
                    return ShardOutcome(values=values), True
                if msg_type == wire.MSG_SHARD_ERR:
                    body = wire.recv_json(payload)
                    return ShardOutcome(
                        error=str(body.get("error", "unknown worker error"))
                    ), True
                if msg_type == wire.MSG_REFUSED:
                    return ShardOutcome(
                        error=f"worker refused shard: "
                              f"{wire.recv_json(payload).get('error')}"
                    ), False
                return ShardOutcome(
                    error=f"unexpected message {msg_type} from worker"
                ), False
        except (OSError, wire.WireError, pickle.PickleError) as exc:
            return ShardOutcome(
                error=f"socket worker failed mid-shard: {exc}"
            ), False
