"""Parallel sweep engine.

Every experiment in the reproduction is a sweep of fully independent
simulated transfers (locations x flow sizes x MPTCP variants).  This
package turns such sweeps into declarative task lists and runs them:

* :class:`~repro.parallel.runner.SimTask` — a picklable spec naming a
  module-level callable plus keyword arguments;
* :class:`~repro.parallel.runner.SweepRunner` — shards a task list
  deterministically across a ``ProcessPoolExecutor`` (``workers=1``
  falls back to pure in-process execution) and layers a
  content-addressed on-disk result cache keyed by the task spec and a
  fingerprint of the ``repro`` source tree;
* :mod:`repro.parallel.tasks` — ready-made task callables returning
  picklable summaries of simulated transfers.

Parallel and serial runs produce bit-identical results: every task
carries its own seed (derived via :func:`repro.core.rng.derive_seed`),
simulations share no state, and results are reassembled in task-list
order regardless of which worker finished first.
"""

from repro.parallel.cache import ResultCache, code_fingerprint, spec_key
from repro.parallel.runner import (
    SimTask,
    SweepRunner,
    SweepStats,
    get_default_workers,
    resolve_workers,
    set_default_workers,
)

__all__ = [
    "ResultCache",
    "SimTask",
    "SweepRunner",
    "SweepStats",
    "code_fingerprint",
    "get_default_workers",
    "resolve_workers",
    "set_default_workers",
    "spec_key",
]
