"""The distributed sweep service.

Every experiment in the reproduction is a sweep of fully independent
simulated transfers (locations x flow sizes x MPTCP variants).  This
package turns such sweeps into declarative task lists and runs them
across three separated layers:

* :mod:`repro.parallel.task` — :class:`SimTask`, a picklable spec
  naming a module-level callable plus keyword arguments;
* :mod:`repro.parallel.executors` — pluggable backends selected via
  ``--executor``/``REPRO_EXECUTOR``: ``inprocess`` (serial, zero
  overhead), ``process`` (local pool, the default), and
  ``socket:HOST:PORT,...`` (remote workers started with ``python -m
  repro.parallel worker``);
* :mod:`repro.parallel.coordinator` — the executor-agnostic
  :class:`SweepCoordinator` owning caching, single-flight, retries,
  poison-task isolation, timeouts, progress, and manifests;

plus the shared :mod:`~repro.parallel.cache` result store (atomic
writes, per-key single-flight — safe for many concurrent runners on
one ``REPRO_CACHE_DIR``), the :mod:`~repro.parallel.service` CLI
(``python -m repro.parallel submit/serve/cache``), and the
self-healing fleet layer: :mod:`~repro.parallel.supervisor`
(:class:`FleetSupervisor` + ``python -m repro.parallel fleet``) keeps
socket workers alive through crashes and stalls, while
:mod:`~repro.parallel.chaos` injects deterministic infrastructure
faults (``REPRO_CHAOS``) so the healing paths stay tested.

:class:`SweepRunner` remains the one-call surface over all of it.
Every backend at every worker count produces bit-identical results:
tasks carry their own seeds (derived via
:func:`repro.core.rng.derive_seed`), simulations share no state, and
results are reassembled in task-list order regardless of which worker
finished first.
"""

from repro.parallel.cache import ResultCache, code_fingerprint, spec_key
from repro.parallel.chaos import ChaosController, ChaosEvent, ChaosSpec
from repro.parallel.coordinator import SweepCoordinator
from repro.parallel.executors import (
    EXECUTOR_ENV,
    Executor,
    InProcessExecutor,
    LocalPoolExecutor,
    get_default_executor,
    make_executor,
    resolve_executor_spec,
    set_default_executor,
)
from repro.parallel.runner import (
    SimTask,
    SweepRunner,
    SweepStats,
    TaskFailure,
    get_default_workers,
    resolve_workers,
    set_default_workers,
)
from repro.parallel.supervisor import FleetSpec, FleetSupervisor

__all__ = [
    "ChaosController",
    "ChaosEvent",
    "ChaosSpec",
    "EXECUTOR_ENV",
    "Executor",
    "FleetSpec",
    "FleetSupervisor",
    "InProcessExecutor",
    "LocalPoolExecutor",
    "ResultCache",
    "SimTask",
    "SweepCoordinator",
    "SweepRunner",
    "SweepStats",
    "TaskFailure",
    "code_fingerprint",
    "get_default_executor",
    "get_default_workers",
    "make_executor",
    "resolve_executor_spec",
    "resolve_workers",
    "set_default_executor",
    "set_default_workers",
    "spec_key",
]
