"""Content-addressed on-disk cache for sweep results.

A cached entry is keyed by the *task spec* (callable path + canonical
JSON of its keyword arguments) and a *code fingerprint* (a hash of
every ``.py`` file in the installed ``repro`` package).  Editing any
source file therefore invalidates the whole cache — the conservative
choice, since a change to the event loop or a congestion controller
can perturb any simulation output.

Environment knobs:

``REPRO_CACHE_DIR``
    Cache directory (default ``~/.cache/repro-sweep``).
``REPRO_CACHE``
    Set to ``0``/``off``/``no`` to disable caching entirely.
"""

import dataclasses
import functools
import hashlib
import json
import os
import pickle
import tempfile
import warnings
from typing import Any, Optional, Tuple

__all__ = ["CACHE_DIR_ENV", "CACHE_TOGGLE_ENV", "ResultCache",
           "cache_enabled_by_env", "canonical_spec", "code_fingerprint",
           "default_cache_dir", "spec_key"]

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
CACHE_TOGGLE_ENV = "REPRO_CACHE"
_ENV_DIR = CACHE_DIR_ENV
_ENV_TOGGLE = CACHE_TOGGLE_ENV
_DISABLED_VALUES = {"0", "off", "no", "false"}


def default_cache_dir() -> str:
    """The cache directory honouring ``REPRO_CACHE_DIR``."""
    configured = os.environ.get(_ENV_DIR)
    if configured:
        return configured
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-sweep")


def cache_enabled_by_env() -> bool:
    """False when ``REPRO_CACHE`` disables caching."""
    return os.environ.get(_ENV_TOGGLE, "1").lower() not in _DISABLED_VALUES


def canonical_spec(obj: Any) -> Any:
    """Reduce ``obj`` to a canonical JSON-serialisable structure.

    Objects exposing a ``canonical_dict()`` (the workload spec types)
    are asked for their own canonical form, tagged with their type so
    two spec kinds can never collide.  Other dataclasses become tagged
    dicts (so two specs differing only in dataclass type hash
    differently); dict keys are sorted by ``json.dumps``; tuples and
    lists coincide (both are JSON arrays).  Anything else that JSON
    cannot express raises ``TypeError`` — task kwargs must stay
    declarative and picklable anyway.
    """
    if not isinstance(obj, type) and hasattr(obj, "canonical_dict"):
        spec = canonical_spec(obj.canonical_dict())
        spec["__spec__"] = f"{type(obj).__module__}.{type(obj).__qualname__}"
        return spec
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        spec = {
            field.name: canonical_spec(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
        spec["__dataclass__"] = f"{type(obj).__module__}.{type(obj).__qualname__}"
        return spec
    if isinstance(obj, dict):
        return {str(key): canonical_spec(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonical_spec(item) for item in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(
        f"task kwargs must be JSON/dataclass-representable, got {type(obj)!r}"
    )


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of every ``.py`` file under the ``repro`` package.

    Computed once per process; any source edit yields a new
    fingerprint and hence a cold cache.
    """
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    entries = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            with open(path, "rb") as handle:
                file_hash = hashlib.sha256(handle.read()).hexdigest()
            entries.append((os.path.relpath(path, root), file_hash))
    for relpath, file_hash in entries:
        digest.update(relpath.encode())
        digest.update(file_hash.encode())
    return digest.hexdigest()


def spec_key(fn: str, kwargs: dict, fingerprint: Optional[str] = None) -> str:
    """The content address of one task result."""
    if fingerprint is None:
        fingerprint = code_fingerprint()
    payload = json.dumps(
        {"fn": fn, "kwargs": canonical_spec(kwargs), "code": fingerprint},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


#: Entry header: magic + sha256(payload).  The digest makes corruption
#: (truncation, bit rot, partial writes from a killed process) a
#: *detected* condition rather than a pickle parse lottery.
_ENTRY_MAGIC = b"RSC1"
_DIGEST_BYTES = hashlib.sha256().digest_size
_HEADER_BYTES = len(_ENTRY_MAGIC) + _DIGEST_BYTES

_corruption_warned = False


def _warn_corruption_once(path: str, reason: str) -> None:
    """Warn about the first corrupt entry seen this process.

    One warning, not one per entry: a damaged cache directory can hold
    thousands of bad files and the sweep recomputes them all anyway.
    """
    global _corruption_warned
    if _corruption_warned:
        return
    _corruption_warned = True
    warnings.warn(
        f"sweep cache entry {path} is corrupt ({reason}); recomputing "
        f"(further corrupt entries will be recomputed silently)",
        RuntimeWarning,
        stacklevel=4,
    )


class ResultCache:
    """Pickle-on-disk store addressed by :func:`spec_key` hashes.

    Filesystem failures (read-only home, corrupt entries) degrade to
    cache misses rather than errors: the sweep must never fail because
    of its cache.  Entries are checksummed (sha256 over the pickle
    payload) so truncated or bit-flipped files are detected and
    recomputed — with a single process-wide warning — instead of
    surfacing as ``EOFError``/``UnpicklingError`` or, worse, silently
    deserializing garbage.
    """

    def __init__(self, root: Optional[str] = None,
                 fingerprint: Optional[str] = None) -> None:
        self.root = root if root is not None else default_cache_dir()
        self._fingerprint = fingerprint

    @property
    def fingerprint(self) -> str:
        if self._fingerprint is None:
            self._fingerprint = code_fingerprint()
        return self._fingerprint

    def key_for(self, fn: str, kwargs: dict) -> str:
        return spec_key(fn, kwargs, self.fingerprint)

    def _path(self, key: str) -> str:
        # Two-level fan-out keeps directory listings manageable.
        return os.path.join(self.root, key[:2], key + ".pkl")

    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; a miss is ``(False, None)``.

        A missing file is a silent miss; a *present but damaged* file
        (bad magic, checksum mismatch, unpicklable payload) is also a
        miss, but warns once per process so an ailing disk does not go
        unnoticed.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            return False, None
        if len(blob) < _HEADER_BYTES or not blob.startswith(_ENTRY_MAGIC):
            _warn_corruption_once(path, "bad or missing header")
            return False, None
        digest = blob[len(_ENTRY_MAGIC):_HEADER_BYTES]
        payload = blob[_HEADER_BYTES:]
        if hashlib.sha256(payload).digest() != digest:
            _warn_corruption_once(path, "checksum mismatch")
            return False, None
        try:
            return True, pickle.loads(payload)
        except Exception:
            # Checksum passed but the payload does not deserialize in
            # this process (e.g. a class moved between versions with
            # the same fingerprint override): still just a miss.
            _warn_corruption_once(path, "unpicklable payload")
            return False, None

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` atomically (write-to-temp + rename)."""
        path = self._path(key)
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            blob = _ENTRY_MAGIC + hashlib.sha256(payload).digest() + payload
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PickleError):
            return

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        if not os.path.isdir(self.root):
            return removed
        for dirpath, _, filenames in os.walk(self.root):
            for filename in filenames:
                if filename.endswith(".pkl"):
                    try:
                        os.unlink(os.path.join(dirpath, filename))
                        removed += 1
                    except OSError:
                        pass
        return removed
