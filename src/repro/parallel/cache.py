"""Content-addressed on-disk cache: the sweep engine's shared store.

A cached entry is keyed by the *task spec* (callable path + canonical
JSON of its keyword arguments) and a *code fingerprint* (a hash of
every ``.py`` file in the installed ``repro`` package).  Editing any
source file therefore invalidates the whole cache — the conservative
choice, since a change to the event loop or a congestion controller
can perturb any simulation output.

The store is safe for **concurrent runners sharing one directory**
(the distributed-sweep case: many coordinators, one
``REPRO_CACHE_DIR`` on shared storage):

* writes are atomic — payload to a tempfile in the destination
  directory, ``fsync``, then ``os.replace`` — so a reader can never
  observe a torn entry, and a crashed writer leaves at most a
  ``.tmp`` orphan that ``gc()`` sweeps up;
* per-key **single-flight**: :meth:`ResultCache.acquire` hands the
  key's computation to exactly one runner via an ``O_EXCL`` lock
  file; everyone else :meth:`ResultCache.wait_for` the published
  entry instead of burning CPU on a duplicate simulation.  Stale
  locks (dead owner pid, or older than ``stale_lock_s``) are broken
  by waiters, so a SIGKILLed runner cannot strand the fleet.

``python -m repro.parallel cache stats|gc|clear`` administers the
store from the command line.

Environment knobs:

``REPRO_CACHE_DIR``
    Cache directory (default ``~/.cache/repro-sweep``).
``REPRO_CACHE``
    Set to ``0``/``off``/``no`` to disable caching entirely.
"""

import dataclasses
import functools
import hashlib
import json
import os
import pickle
import tempfile
import time
import warnings
from typing import Any, Dict, Optional, Tuple

from repro.core.proc import pid_start_token, same_process
from repro.parallel import chaos

__all__ = ["CACHE_DIR_ENV", "CACHE_TOGGLE_ENV", "ResultCache",
           "cache_enabled_by_env", "canonical_spec", "code_fingerprint",
           "default_cache_dir", "spec_key"]

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
CACHE_TOGGLE_ENV = "REPRO_CACHE"
_ENV_DIR = CACHE_DIR_ENV
_ENV_TOGGLE = CACHE_TOGGLE_ENV
_DISABLED_VALUES = {"0", "off", "no", "false"}


def default_cache_dir() -> str:
    """The cache directory honouring ``REPRO_CACHE_DIR``."""
    configured = os.environ.get(_ENV_DIR)
    if configured:
        return configured
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-sweep")


def cache_enabled_by_env() -> bool:
    """False when ``REPRO_CACHE`` disables caching."""
    return os.environ.get(_ENV_TOGGLE, "1").lower() not in _DISABLED_VALUES


def canonical_spec(obj: Any) -> Any:
    """Reduce ``obj`` to a canonical JSON-serialisable structure.

    Objects exposing a ``canonical_dict()`` (the workload spec types)
    are asked for their own canonical form, tagged with their type so
    two spec kinds can never collide.  Other dataclasses become tagged
    dicts (so two specs differing only in dataclass type hash
    differently); dict keys are sorted by ``json.dumps``; tuples and
    lists coincide (both are JSON arrays).  Anything else that JSON
    cannot express raises ``TypeError`` — task kwargs must stay
    declarative and picklable anyway.
    """
    if not isinstance(obj, type) and hasattr(obj, "canonical_dict"):
        spec = canonical_spec(obj.canonical_dict())
        spec["__spec__"] = f"{type(obj).__module__}.{type(obj).__qualname__}"
        return spec
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        spec = {
            field.name: canonical_spec(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
        spec["__dataclass__"] = f"{type(obj).__module__}.{type(obj).__qualname__}"
        return spec
    if isinstance(obj, dict):
        return {str(key): canonical_spec(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonical_spec(item) for item in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(
        f"task kwargs must be JSON/dataclass-representable, got {type(obj)!r}"
    )


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of every ``.py`` file under the ``repro`` package.

    Computed once per process; any source edit yields a new
    fingerprint and hence a cold cache.
    """
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    entries = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            with open(path, "rb") as handle:
                file_hash = hashlib.sha256(handle.read()).hexdigest()
            entries.append((os.path.relpath(path, root), file_hash))
    for relpath, file_hash in entries:
        digest.update(relpath.encode())
        digest.update(file_hash.encode())
    return digest.hexdigest()


def spec_key(fn: str, kwargs: dict, fingerprint: Optional[str] = None) -> str:
    """The content address of one task result."""
    if fingerprint is None:
        fingerprint = code_fingerprint()
    payload = json.dumps(
        {"fn": fn, "kwargs": canonical_spec(kwargs), "code": fingerprint},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


#: Entry header: magic + sha256(payload).  The digest makes corruption
#: (truncation, bit rot, partial writes from a killed process) a
#: *detected* condition rather than a pickle parse lottery.
_ENTRY_MAGIC = b"RSC1"
_DIGEST_BYTES = hashlib.sha256().digest_size
_HEADER_BYTES = len(_ENTRY_MAGIC) + _DIGEST_BYTES

_corruption_warned = False


def _warn_corruption_once(path: str, reason: str) -> None:
    """Warn about the first corrupt entry seen this process.

    One warning, not one per entry: a damaged cache directory can hold
    thousands of bad files and the sweep recomputes them all anyway.
    """
    global _corruption_warned
    if _corruption_warned:
        return
    _corruption_warned = True
    warnings.warn(
        f"sweep cache entry {path} is corrupt ({reason}); recomputing "
        f"(further corrupt entries will be recomputed silently)",
        RuntimeWarning,
        stacklevel=4,
    )


class ResultCache:
    """Pickle-on-disk store addressed by :func:`spec_key` hashes.

    Filesystem failures (read-only home, corrupt entries) degrade to
    cache misses rather than errors: the sweep must never fail because
    of its cache.  Entries are checksummed (sha256 over the pickle
    payload) so truncated or bit-flipped files are detected and
    recomputed — with a single process-wide warning — instead of
    surfacing as ``EOFError``/``UnpicklingError`` or, worse, silently
    deserializing garbage.
    """

    #: A single-flight lock whose owner pid is dead — or, when pids
    #: are unverifiable (another host on shared storage), older than
    #: this — is considered abandoned and may be broken by a waiter.
    stale_lock_s = 3600.0

    def __init__(self, root: Optional[str] = None,
                 fingerprint: Optional[str] = None) -> None:
        self.root = root if root is not None else default_cache_dir()
        self._fingerprint = fingerprint

    @property
    def fingerprint(self) -> str:
        if self._fingerprint is None:
            self._fingerprint = code_fingerprint()
        return self._fingerprint

    def key_for(self, fn: str, kwargs: dict) -> str:
        return spec_key(fn, kwargs, self.fingerprint)

    def _path(self, key: str) -> str:
        # Two-level fan-out keeps directory listings manageable.
        return os.path.join(self.root, key[:2], key + ".pkl")

    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; a miss is ``(False, None)``.

        A missing file is a silent miss; a *present but damaged* file
        (bad magic, checksum mismatch, unpicklable payload) is also a
        miss, but warns once per process so an ailing disk does not go
        unnoticed.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            return False, None
        if len(blob) < _HEADER_BYTES or not blob.startswith(_ENTRY_MAGIC):
            _warn_corruption_once(path, "bad or missing header")
            return False, None
        digest = blob[len(_ENTRY_MAGIC):_HEADER_BYTES]
        payload = blob[_HEADER_BYTES:]
        if hashlib.sha256(payload).digest() != digest:
            _warn_corruption_once(path, "checksum mismatch")
            return False, None
        try:
            return True, pickle.loads(payload)
        except Exception:
            # Checksum passed but the payload does not deserialize in
            # this process (e.g. a class moved between versions with
            # the same fingerprint override): still just a miss.
            _warn_corruption_once(path, "unpicklable payload")
            return False, None

    def put(self, key: str, value: Any) -> bool:
        """Store ``value`` atomically; returns whether it was written.

        The payload goes to a tempfile *in the destination directory*
        (same filesystem, so the final ``os.replace`` is atomic), is
        ``fsync``\\ ed, and only then renamed into place.  A process
        killed mid-``put`` therefore leaves either the old state or
        the complete new entry — never a torn file — and a crash
        before the rename leaves only a ``.tmp`` orphan that
        :meth:`gc` removes.
        """
        path = self._path(key)
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            blob = _ENTRY_MAGIC + hashlib.sha256(payload).digest() + payload
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PickleError):
            return False
        controller = chaos.active_controller()
        if controller is not None:
            # Chaos seam: flip a payload byte *after* the atomic rename,
            # modelling post-write bit rot the checksum must catch.
            controller.on_cache_put(path, _HEADER_BYTES)
        return True

    # ------------------------------------------------------------------
    # Per-key single-flight
    # ------------------------------------------------------------------
    def _lock_path(self, key: str) -> str:
        return self._path(key) + ".lock"

    def acquire(self, key: str) -> bool:
        """Claim the right to compute ``key``.

        Returns ``True`` when this process now owns the computation
        (including when locking is impossible, e.g. a read-only cache
        directory — computing twice is always safe, blocking is not).
        ``False`` means another live runner is already computing it;
        use :meth:`wait_for` to collect their result.
        """
        lock_path = self._lock_path(key)
        # The (pid, start-token) pair closes the PID-reuse race: a
        # kill-0 probe alone can mistake an unrelated process that
        # recycled the dead owner's pid for a live owner.
        body = json.dumps(
            {"pid": os.getpid(), "start": pid_start_token(os.getpid()),
             "time": time.time()}
        ).encode("utf-8")
        try:
            os.makedirs(os.path.dirname(lock_path), exist_ok=True)
            fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            if self._lock_is_stale(lock_path):
                self._break_lock(lock_path)
                return self.acquire(key)
            return False
        except OSError:
            return True  # cannot lock here; compute rather than deadlock
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(body)
        except OSError:
            pass
        return True

    def release(self, key: str) -> None:
        """Drop this process's claim on ``key`` (idempotent)."""
        try:
            os.unlink(self._lock_path(key))
        except OSError:
            pass

    def wait_for(self, key: str, timeout_s: float = 600.0,
                 poll_s: float = 0.05) -> Tuple[bool, Any]:
        """Wait for another runner to publish ``key``.

        Returns ``(True, value)`` as soon as the entry lands.  Returns
        ``(False, None)`` when the wait is off: the owner released its
        lock without publishing (poison task), the lock went stale
        (owner died), or ``timeout_s`` ran out — in every case the
        caller should take over the computation.
        """
        deadline = time.monotonic() + timeout_s
        lock_path = self._lock_path(key)
        while True:
            hit, value = self.get(key)
            if hit:
                return True, value
            if not os.path.exists(lock_path):
                # Owner finished without publishing, or released and
                # the entry write failed: one final read closes the
                # release-then-publish race, then the caller owns it.
                hit, value = self.get(key)
                return (hit, value if hit else None)
            if self._lock_is_stale(lock_path):
                self._break_lock(lock_path)
                return False, None
            if time.monotonic() >= deadline:
                return False, None
            time.sleep(poll_s)

    def _lock_is_stale(self, lock_path: str) -> bool:
        """A lock whose owner is provably dead (or far too old).

        "Provably dead" checks the recorded (pid, start-token) pair,
        not bare pid liveness: an unrelated process that recycled the
        dead owner's pid has a different start token, so the lock is
        still broken instead of stranding waiters for ``stale_lock_s``.
        """
        try:
            with open(lock_path, "rb") as handle:
                body = json.loads(handle.read().decode("utf-8"))
            pid = int(body["pid"])
            stamped = float(body["time"])
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            # Unreadable/torn lock: fall back to its file age.
            try:
                return (time.time() - os.path.getmtime(lock_path)
                        > self.stale_lock_s)
            except OSError:
                return False  # vanished: not stale, just gone
        if pid == os.getpid():
            return False
        start = body.get("start")
        if isinstance(start, str) and not same_process(pid, start):
            return True  # owner (this exact incarnation) is gone
        if not isinstance(start, str):
            # Old-format lock (no token): bare liveness probe only.
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return True  # owner pid is gone on this host
            except PermissionError:
                pass  # pid exists (another user's process)
            except OSError:
                pass  # cannot probe (another host's pid): age decides
        return time.time() - stamped > self.stale_lock_s

    @staticmethod
    def _break_lock(lock_path: str) -> None:
        try:
            os.unlink(lock_path)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Administration (python -m repro.parallel cache ...)
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Counts and sizes of the store's current contents."""
        entries = 0
        total_bytes = 0
        locks = 0
        stale_locks = 0
        orphan_tmp = 0
        oldest: Optional[float] = None
        newest: Optional[float] = None
        for path in self._walk():
            if path.endswith(".pkl"):
                try:
                    info = os.stat(path)
                except OSError:
                    continue
                entries += 1
                total_bytes += info.st_size
                oldest = min(oldest, info.st_mtime) if oldest else info.st_mtime
                newest = max(newest, info.st_mtime) if newest else info.st_mtime
            elif path.endswith(".lock"):
                locks += 1
                if self._lock_is_stale(path):
                    stale_locks += 1
            elif path.endswith(".tmp"):
                orphan_tmp += 1
        now = time.time()
        return {
            "root": self.root,
            "entries": entries,
            "total_bytes": total_bytes,
            "locks": locks,
            "stale_locks": stale_locks,
            "orphan_tmp": orphan_tmp,
            "oldest_age_s": round(now - oldest, 1) if oldest else None,
            "newest_age_s": round(now - newest, 1) if newest else None,
        }

    def gc(self, max_age_s: Optional[float] = None) -> Dict[str, int]:
        """Collect garbage: stale locks, orphan tempfiles, old entries.

        ``max_age_s`` additionally removes entries not modified within
        that window (``None`` keeps all entries).  Live locks and
        fresh entries are never touched, so gc is safe to run while
        sweeps are in flight.
        """
        removed = {"entries": 0, "locks": 0, "tmp": 0}
        now = time.time()
        for path in self._walk():
            try:
                if path.endswith(".lock"):
                    if self._lock_is_stale(path):
                        os.unlink(path)
                        removed["locks"] += 1
                elif path.endswith(".tmp"):
                    # A tempfile a minute old is a crashed writer, not
                    # a put() in progress.
                    if now - os.path.getmtime(path) > 60.0:
                        os.unlink(path)
                        removed["tmp"] += 1
                elif path.endswith(".pkl") and max_age_s is not None:
                    if now - os.path.getmtime(path) > max_age_s:
                        os.unlink(path)
                        removed["entries"] += 1
            except OSError:
                continue
        return removed

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        for path in self._walk():
            if path.endswith(".pkl"):
                try:
                    os.unlink(path)
                    removed += 1
                except OSError:
                    pass
        return removed

    def _walk(self):
        if not os.path.isdir(self.root):
            return
        for dirpath, _, filenames in os.walk(self.root):
            for filename in filenames:
                yield os.path.join(dirpath, filename)
