"""Radio energy models (paper §3.6, Fig. 16).

The paper measured tethered phones with a Monsoon power monitor; we
reproduce the observable structure instead: radio power-state machines
driven by the simulator's packet timeline.  The decisive LTE behaviour
is the ~15 s high-power *tail* after any activity — even a lone SYN or
FIN — which is why Backup mode saves almost no energy for flows
shorter than 15 s.
"""

from repro.energy.states import RadioPowerModel, LTE_POWER_MODEL, WIFI_POWER_MODEL, BASE_POWER_W
from repro.energy.monitor import PowerMonitor, InterfaceActivityLog

__all__ = [
    "RadioPowerModel",
    "LTE_POWER_MODEL",
    "WIFI_POWER_MODEL",
    "BASE_POWER_W",
    "PowerMonitor",
    "InterfaceActivityLog",
]
