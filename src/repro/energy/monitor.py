"""Power monitoring: the Monsoon-monitor analog.

:class:`InterfaceActivityLog` taps a path's client-side packet events
(transmissions on the uplink, deliveries on the downlink) — the times
at which the phone's radio must be awake.  :class:`PowerMonitor` turns
that activity into power-vs-time traces (Fig. 16) and energy integrals
(§3.6.2).
"""

from typing import List, Optional, Tuple

from repro.core.packet import Packet, PacketFlags
from repro.energy.states import BASE_POWER_W, RadioPowerModel
from repro.net.path import Path

__all__ = ["InterfaceActivityLog", "PowerMonitor"]


class InterfaceActivityLog:
    """Records every packet event seen by the client on one interface.

    Also keeps per-event flags so Fig. 15-style packet timelines can
    distinguish SYN/FIN wakeups from data.
    """

    def __init__(self, path: Path):
        self.path = path
        #: (time, flags, payload_bytes, direction) per event; direction
        #: is "tx" (client sent) or "rx" (client received).
        self.events: List[Tuple[float, PacketFlags, int, str]] = []
        path.uplink.on_transmit.append(self._on_tx)
        path.downlink.on_deliver.append(self._on_rx)

    def _on_tx(self, packet: Packet, when: float) -> None:
        self.events.append((when, packet.flags, packet.payload_bytes, "tx"))

    def _on_rx(self, packet: Packet, when: float) -> None:
        self.events.append((when, packet.flags, packet.payload_bytes, "rx"))

    @property
    def activity_times(self) -> List[float]:
        """Sorted times of all packet events."""
        return sorted(event[0] for event in self.events)

    def times_with_flag(self, flag: PacketFlags) -> List[float]:
        """Times of events whose packet carried ``flag``."""
        return sorted(t for t, flags, _, _ in self.events if flags & flag)

    @property
    def first_activity(self) -> Optional[float]:
        times = self.activity_times
        return times[0] if times else None

    @property
    def last_activity(self) -> Optional[float]:
        times = self.activity_times
        return times[-1] if times else None


class PowerMonitor:
    """Computes power traces and energy from an interface's activity."""

    def __init__(self, log: InterfaceActivityLog, model: RadioPowerModel):
        self.log = log
        self.model = model

    def power_series(
        self, t_start: float, t_end: float, step_s: float = 0.1,
        include_base: bool = True,
    ) -> List[Tuple[float, float]]:
        """(time, watts) samples — the paper's Fig. 16 traces."""
        times = self.log.activity_times
        base = BASE_POWER_W if include_base else 0.0
        series: List[Tuple[float, float]] = []
        t = t_start
        while t <= t_end + 1e-9:
            series.append((t, base + self.model.power_at(t, times)))
            t += step_s
        return series

    def radio_energy_j(self, t_start: float, t_end: float) -> float:
        """Radio-only energy (J) over the window (base power excluded)."""
        return self.model.energy_j(self.log.activity_times, t_start, t_end)

    def total_energy_j(self, t_start: float, t_end: float) -> float:
        """Radio plus base energy (J) over the window."""
        return self.radio_energy_j(t_start, t_end) + BASE_POWER_W * max(
            0.0, t_end - t_start
        )
