"""Radio power-state models.

Parameters follow the paper's Fig. 16 readings (total device power,
1 W base):

* LTE active transfer: ~3.5 W total → +2.5 W radio draw; after the
  last packet the radio holds an RRC_CONNECTED tail at ~2 W total
  (+1 W) for about 15 seconds ("Tail Energy", refs [3, 7]).
* WiFi active transfer: ~2 W total → +1 W radio draw; PSM puts the
  radio to sleep within ~0.2 s, with negligible idle draw.
"""

from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import ConfigurationError

__all__ = ["RadioPowerModel", "LTE_POWER_MODEL", "WIFI_POWER_MODEL", "BASE_POWER_W"]

#: Power drawn by the rest of the phone (screen, CPU) in the paper's
#: measurements; every sub-figure of Fig. 16 shows this 1 W floor.
BASE_POWER_W = 1.0


@dataclass(frozen=True)
class RadioPowerModel:
    """A three-state (active / tail / idle) radio power model.

    The radio is *active* for ``active_hold_s`` after each packet
    event, then holds a *tail* state for ``tail_s``, then idles.
    """

    name: str
    active_w: float
    tail_w: float
    idle_w: float
    active_hold_s: float
    tail_s: float

    def __post_init__(self) -> None:
        for field_name in ("active_w", "tail_w", "idle_w", "active_hold_s", "tail_s"):
            if getattr(self, field_name) < 0:
                raise ConfigurationError(f"{field_name} must be >= 0")

    def with_fast_dormancy(self, tail_s: float = 3.0) -> "RadioPowerModel":
        """A copy with the RRC tail cut short (3GPP fast dormancy).

        §3.6.2 suggests fast dormancy as the fix for Backup mode's
        wasted tail energy: the radio requests the low-power state
        right after its SYN/FIN instead of idling at tail power for
        ~15 s.
        """
        return RadioPowerModel(
            name=f"{self.name}+fd",
            active_w=self.active_w,
            tail_w=self.tail_w,
            idle_w=self.idle_w,
            active_hold_s=self.active_hold_s,
            tail_s=tail_s,
        )

    def power_at(self, t: float, activity_times: Sequence[float]) -> float:
        """Radio draw (W, excluding base) at time ``t``.

        ``activity_times`` must be sorted ascending; binary search keeps
        repeated sampling cheap.
        """
        import bisect

        index = bisect.bisect_right(activity_times, t) - 1
        if index < 0:
            return self.idle_w
        gap = t - activity_times[index]
        if gap <= self.active_hold_s:
            return self.active_w
        if gap <= self.active_hold_s + self.tail_s:
            return self.tail_w
        return self.idle_w

    def energy_j(
        self, activity_times: Sequence[float], t_start: float, t_end: float
    ) -> float:
        """Radio energy over ``[t_start, t_end]`` (exact, piecewise).

        Walks the activity intervals analytically rather than sampling,
        so short SYN/FIN wakeups are charged precisely.
        """
        if t_end <= t_start:
            return 0.0
        energy = 0.0
        cursor = t_start
        events = [t for t in activity_times if t <= t_end]
        boundaries = []
        for t in events:
            boundaries.append((t, t + self.active_hold_s, t + self.active_hold_s + self.tail_s))
        index = 0
        while cursor < t_end:
            # Find the most recent activity at `cursor`.
            while index + 1 < len(boundaries) and boundaries[index + 1][0] <= cursor:
                index += 1
            if not boundaries or boundaries[index][0] > cursor:
                # Idle until the next activity (or the end).
                next_t = boundaries[index][0] if boundaries and boundaries[index][0] > cursor else t_end
                next_t = min(next_t, t_end)
                energy += self.idle_w * (next_t - cursor)
                cursor = next_t
                continue
            start, active_end, tail_end = boundaries[index]
            next_activity = (
                boundaries[index + 1][0] if index + 1 < len(boundaries) else float("inf")
            )
            if cursor < active_end:
                seg_end = min(active_end, next_activity, t_end)
                energy += self.active_w * (seg_end - cursor)
            elif cursor < tail_end:
                seg_end = min(tail_end, next_activity, t_end)
                energy += self.tail_w * (seg_end - cursor)
            else:
                seg_end = min(next_activity, t_end)
                energy += self.idle_w * (seg_end - cursor)
            cursor = seg_end
        return energy


#: Calibrated to Fig. 16a/16c: ~3.5 W total while transferring, 2 W
#: total during the ~15 s tail, 1 W base when idle.
LTE_POWER_MODEL = RadioPowerModel(
    name="lte", active_w=2.5, tail_w=1.0, idle_w=0.0,
    active_hold_s=0.1, tail_s=15.0,
)

#: Calibrated to Fig. 16b/16d: ~2 W total while transferring, rapid
#: power-save sleep, negligible idle draw.
WIFI_POWER_MODEL = RadioPowerModel(
    name="wifi", active_w=1.0, tail_w=0.4, idle_w=0.03,
    active_hold_s=0.1, tail_s=0.2,
)
