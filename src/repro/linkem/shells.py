"""Mahimahi-style shells assembled on top of the simulator.

Mahimahi composes a network out of nested shells (``mm-delay`` inside
``mm-link`` …).  Here a :class:`LinkSpec` declares one emulated
interface (rate or trace, delay, buffer, loss) and :class:`MpShell`
— the paper's multi-link extension — assembles a
:class:`~repro.scenario.Scenario` exposing a ``wifi`` and an ``lte``
path, ready to carry TCP or MPTCP connections.
"""

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.errors import ConfigurationError
from repro.core.rng import DEFAULT_SEED, RngStreams
from repro.linkem.traces import synth_lte_trace, synth_wifi_trace
from repro.net.path import PathConfig
from repro.scenario import Scenario

__all__ = ["LinkSpec", "MpShell"]


@dataclass
class LinkSpec:
    """Declarative description of one emulated interface.

    ``technology`` selects the trace synthesizer ("wifi" or "lte")
    when ``trace_driven`` is set; otherwise the link is fixed-rate.
    """

    technology: str
    down_mbps: float
    up_mbps: float
    rtt_ms: float
    loss_rate: float = 0.0
    queue_packets: int = 250
    trace_driven: bool = False
    #: Log-sigma of run-to-run rate variation.  The paper measured its
    #: configurations *sequentially* (one multi-homed client), so every
    #: pairwise comparison includes the network's temporal variability;
    #: a fresh scenario seed redraws the link's effective rate.
    temporal_sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.technology not in ("wifi", "lte"):
            raise ConfigurationError(
                f"technology must be 'wifi' or 'lte': {self.technology!r}"
            )
        if self.down_mbps <= 0 or self.up_mbps <= 0:
            raise ConfigurationError("link rates must be positive")
        if self.temporal_sigma < 0:
            raise ConfigurationError("temporal_sigma must be >= 0")

    def to_path_config(self, name: str, rng_streams: RngStreams) -> PathConfig:
        """Materialize this spec as a path configuration."""
        import math

        factor = 1.0
        rtt_factor = 1.0
        if self.temporal_sigma > 0:
            jitter_rng = rng_streams.get(f"jitter.{name}")
            factor = math.exp(self.temporal_sigma * jitter_rng.gauss(0.0, 1.0))
            # Delays vary between runs too (load-dependent queueing in
            # the access network), though less than rates do.
            rtt_factor = math.exp(
                0.6 * self.temporal_sigma * jitter_rng.gauss(0.0, 1.0)
            )
        down_mbps = self.down_mbps * factor
        up_mbps = self.up_mbps * factor
        rtt_ms = self.rtt_ms * rtt_factor
        down_trace = up_trace = None
        if self.trace_driven:
            rng = rng_streams.get(f"trace.{name}")
            if self.technology == "lte":
                down_trace = synth_lte_trace(rng, down_mbps)
                up_trace = synth_lte_trace(rng, up_mbps)
            else:
                down_trace = synth_wifi_trace(rng, down_mbps)
                up_trace = synth_wifi_trace(rng, up_mbps)
        return PathConfig(
            name=name,
            up_mbps=up_mbps,
            down_mbps=down_mbps,
            rtt_ms=rtt_ms,
            up_trace=up_trace,
            down_trace=down_trace,
            queue_packets=self.queue_packets,
            loss_rate=self.loss_rate,
        )


class MpShell:
    """The paper's multi-link shell: one WiFi and one LTE interface.

    >>> shell = MpShell(
    ...     wifi=LinkSpec("wifi", down_mbps=12, up_mbps=6, rtt_ms=35),
    ...     lte=LinkSpec("lte", down_mbps=9, up_mbps=4, rtt_ms=80),
    ... )
    >>> scenario = shell.build()
    >>> sorted(scenario.path_names)
    ['lte', 'wifi']
    """

    def __init__(
        self,
        wifi: LinkSpec,
        lte: LinkSpec,
        seed: int = DEFAULT_SEED,
    ) -> None:
        self.wifi = wifi
        self.lte = lte
        self.seed = seed

    def build(self, seed: Optional[int] = None) -> Scenario:
        """Assemble a fresh scenario (new event loop, new links)."""
        scenario = Scenario(seed=seed if seed is not None else self.seed)
        scenario.add_path(self.wifi.to_path_config("wifi", scenario.rng))
        scenario.add_path(self.lte.to_path_config("lte", scenario.rng))
        return scenario

    @property
    def specs(self) -> Dict[str, LinkSpec]:
        return {"wifi": self.wifi, "lte": self.lte}
