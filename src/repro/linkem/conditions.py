"""The registry of 20 emulated network conditions (paper Table 2).

The paper measured at 20 locations across 7 US cities, then reused the
recorded traces as the 20 "network conditions" of the replay study
(§5).  We synthesize 20 conditions whose joint WiFi/LTE statistics are
calibrated against the paper's published aggregates:

* the CDF of ``Tput(WiFi) − Tput(LTE)`` spans roughly −15…+25 Mbit/s
  with LTE winning ~40 % of the time (Figs. 3 and 6);
* LTE RTTs are usually, but not always, higher than WiFi (Fig. 4);
* LTE links carry deep buffers (bufferbloat) and negligible channel
  loss; WiFi links have shallower buffers and bursty contention loss.

Condition IDs follow the paper's presentation convention: IDs 1 and 2
are the strongest WiFi-advantage locations, IDs 3 and 4 the strongest
LTE-advantage ones (cf. Figs. 18 and 20), and 5–20 cover the middle.
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.rng import DEFAULT_SEED, RngStreams
from repro.linkem.shells import LinkSpec, MpShell
from repro.scenario import Scenario

__all__ = [
    "TABLE2_LOCATIONS",
    "LocationCondition",
    "make_conditions",
    "build_scenario",
]

#: (city, description) rows exactly as printed in the paper's Table 2.
TABLE2_LOCATIONS: List[Tuple[str, str]] = [
    ("Amherst, MA", "University Campus, Indoor"),
    ("Amherst, MA", "University Campus, Outdoor"),
    ("Amherst, MA", "Cafe, Indoor"),
    ("Amherst, MA", "Downtown, Outdoor"),
    ("Amherst, MA", "Apartment, Indoor"),
    ("Boston, MA", "Cafe, Indoor"),
    ("Boston, MA", "Shopping Mall, Indoor"),
    ("Boston, MA", "Subway, Outdoor"),
    ("Boston, MA", "Airport, Indoor"),
    ("Boston, MA", "Apartment, Indoor"),
    ("Boston, MA", "Cafe, Indoor"),
    ("Boston, MA", "Downtown, Outdoor"),
    ("Boston, MA", "Store, Indoor"),
    ("Santa Barbara, CA", "Hotel Lobby, Indoor"),
    ("Santa Barbara, CA", "Hotel Room, Indoor"),
    ("Santa Barbara, CA", "Conference Room, Indoor"),
    ("Los Angeles, CA", "Airport, Indoor"),
    ("Washington, D.C.", "Hotel Room, Indoor"),
    ("Princeton, NJ", "Hotel Room, Indoor"),
    ("Philadelphia, PA", "Hotel Room, Indoor"),
]

#: Locations (by final condition id) where both carriers and both
#: congestion-control algorithms were measured (§3.5: "at 7 of the 20
#: locations").
DUAL_CC_CONDITION_IDS = (1, 2, 3, 4, 5, 6, 7)


@dataclass
class LocationCondition:
    """One emulated measurement location."""

    condition_id: int
    city: str
    description: str
    wifi: LinkSpec
    lte: LinkSpec

    @property
    def wifi_advantage_mbps(self) -> float:
        """Nominal Tput(WiFi) − Tput(LTE) on the downlink."""
        return self.wifi.down_mbps - self.lte.down_mbps

    def shell(self, seed: int = DEFAULT_SEED) -> MpShell:
        """The MpShell emulating this location."""
        return MpShell(wifi=self.wifi, lte=self.lte, seed=seed)

    def __repr__(self) -> str:
        return (
            f"LocationCondition(#{self.condition_id} {self.city}: "
            f"wifi {self.wifi.down_mbps:.1f}/{self.wifi.up_mbps:.1f} Mbps "
            f"{self.wifi.rtt_ms:.0f} ms, "
            f"lte {self.lte.down_mbps:.1f}/{self.lte.up_mbps:.1f} Mbps "
            f"{self.lte.rtt_ms:.0f} ms)"
        )


def _lognormal(rng, median: float, sigma: float, lo: float, hi: float) -> float:
    value = median * (2.718281828459045 ** (sigma * rng.gauss(0.0, 1.0)))
    return min(max(value, lo), hi)


def make_conditions(
    seed: int = DEFAULT_SEED,
    count: int = 20,
    trace_driven: bool = False,
    temporal_sigma: float = 0.0,
) -> List[LocationCondition]:
    """Generate the emulated-location registry.

    Deterministic for a given ``seed``.  With ``trace_driven=True``
    the resulting scenarios use synthesized delivery-opportunity traces
    instead of fixed-rate links (slower but more faithful).
    ``temporal_sigma`` adds run-to-run rate variation (redrawn per
    scenario seed), modelling that the paper's configurations were
    measured at different moments.
    """
    streams = RngStreams(seed).fork("linkem.conditions")
    raw: List[Tuple[float, LinkSpec, LinkSpec]] = []
    for index in range(count):
        rng = streams.get(f"location.{index}")
        wifi_down = _lognormal(rng, 9.0, 0.85, 0.8, 45.0)
        lte_down = _lognormal(rng, 7.0, 0.70, 0.7, 35.0)
        wifi = LinkSpec(
            technology="wifi",
            down_mbps=wifi_down,
            up_mbps=max(0.5, wifi_down * rng.uniform(0.35, 0.7)),
            rtt_ms=_lognormal(rng, 30.0, 0.55, 8.0, 350.0),
            loss_rate=rng.choice([0.0, 0.001, 0.002, 0.004, 0.006]),
            queue_packets=rng.choice([100, 150, 250]),
            trace_driven=trace_driven,
            temporal_sigma=temporal_sigma,
        )
        lte = LinkSpec(
            technology="lte",
            down_mbps=lte_down,
            up_mbps=max(0.4, lte_down * rng.uniform(0.3, 0.6)),
            rtt_ms=_lognormal(rng, 90.0, 0.45, 30.0, 450.0),
            loss_rate=rng.choice([0.0, 0.0, 0.0005, 0.001]),
            queue_packets=rng.choice([500, 800, 1200]),
            trace_driven=trace_driven,
            temporal_sigma=temporal_sigma,
        )
        raw.append((wifi.down_mbps - lte.down_mbps, wifi, lte))

    # Paper-style IDs: 1–2 strongest WiFi advantage, 3–4 strongest LTE
    # advantage, 5–20 in descending WiFi-advantage order.
    by_advantage = sorted(raw, key=lambda item: -item[0])
    ordered = (
        by_advantage[:2] + by_advantage[-2:][::-1] + by_advantage[2:-2]
    )
    conditions = []
    for condition_id, (_, wifi, lte) in enumerate(ordered, start=1):
        city, description = TABLE2_LOCATIONS[(condition_id - 1) % len(TABLE2_LOCATIONS)]
        conditions.append(
            LocationCondition(
                condition_id=condition_id,
                city=city,
                description=description,
                wifi=wifi,
                lte=lte,
            )
        )
    return conditions


def build_scenario(
    condition: LocationCondition, seed: Optional[int] = None
) -> Scenario:
    """Fresh scenario (event loop + wifi/lte paths) for one condition."""
    shell = condition.shell(seed=seed if seed is not None else DEFAULT_SEED)
    return shell.build()
