"""CLI: synthesize Mahimahi-format delivery traces.

Usage::

    python -m repro.linkem lte 8.0 --duration-ms 8000 --out lte8.trace
    python -m repro.linkem wifi 12.0 --contention 0.4 --out wifi12.trace

The output files use Mahimahi's one-millisecond-per-line format and can
be fed to real ``mm-link`` instances as well as back into this library
via :meth:`repro.net.trace.DeliveryTrace.load`.
"""

import argparse
import random
import sys
from typing import List, Optional

from repro.core.rng import DEFAULT_SEED
from repro.core.errors import ConfigurationError
from repro.linkem.traces import synth_lte_trace, synth_wifi_trace, with_outage


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.linkem",
        description="Synthesize Mahimahi-format LTE/WiFi delivery traces.",
    )
    parser.add_argument("technology", choices=["lte", "wifi"])
    parser.add_argument("mean_mbps", type=float,
                        help="target long-run rate in Mbit/s")
    parser.add_argument("--duration-ms", type=int, default=8000,
                        help="trace period before it loops (default 8000)")
    parser.add_argument("--volatility", type=float, default=0.15,
                        help="LTE rate-walk volatility (default 0.15)")
    parser.add_argument("--contention", type=float, default=0.3,
                        help="WiFi busy-channel duty cycle (default 0.3)")
    parser.add_argument("--outage", nargs=2, type=int, default=None,
                        metavar=("START_MS", "DURATION_MS"),
                        help="carve a silent gap (no delivery "
                             "opportunities) into each trace period")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--out", default="-",
                        help="output path, or '-' for stdout")
    args = parser.parse_args(argv)

    rng = random.Random(args.seed)
    if args.technology == "lte":
        trace = synth_lte_trace(rng, args.mean_mbps,
                                duration_ms=args.duration_ms,
                                volatility=args.volatility)
    else:
        trace = synth_wifi_trace(rng, args.mean_mbps,
                                 duration_ms=args.duration_ms,
                                 contention=args.contention)

    if args.outage is not None:
        try:
            trace = with_outage(trace, args.outage[0], args.outage[1])
        except ConfigurationError as exc:
            print(f"linkem: {exc}", file=sys.stderr)
            return 2

    if args.out == "-":
        for offset in trace.offsets_ms:
            print(offset)
    else:
        trace.save(args.out)
        print(f"wrote {len(trace)} opportunities "
              f"(~{trace.mean_rate_mbps:.2f} Mbit/s, "
              f"{trace.period_ms} ms period) to {args.out}",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
