"""Mahimahi-analog link emulation.

The paper replays app traffic over emulated WiFi and LTE links using
Mahimahi's trace-driven shells.  This package provides the same
abstractions in-simulator:

* :mod:`repro.linkem.traces` — synthetic LTE/WiFi delivery-opportunity
  traces (Mahimahi file format compatible);
* :mod:`repro.linkem.shells` — LinkShell / DelayShell / MpShell
  equivalents that assemble :class:`~repro.scenario.Scenario` objects;
* :mod:`repro.linkem.conditions` — the registry of 20 emulated network
  conditions standing in for the paper's Table 2 locations.
"""

from repro.linkem.traces import synth_lte_trace, synth_wifi_trace
from repro.linkem.shells import LinkSpec, MpShell
from repro.linkem.conditions import (
    LocationCondition,
    TABLE2_LOCATIONS,
    make_conditions,
    build_scenario,
)

__all__ = [
    "synth_lte_trace",
    "synth_wifi_trace",
    "LinkSpec",
    "MpShell",
    "LocationCondition",
    "TABLE2_LOCATIONS",
    "make_conditions",
    "build_scenario",
]
