"""Synthetic delivery-opportunity traces for LTE and WiFi links.

The paper drove Mahimahi with packet-delivery traces recorded from real
radios.  With no radios here, we synthesize traces whose second-order
structure matches the technologies' published behaviour:

* **LTE** — a per-millisecond scheduler grant whose rate wanders as a
  mean-reverting random walk (shadowing + scheduler share), so
  throughput varies on ~100 ms–1 s timescales but rarely drops to zero.
* **WiFi** — 802.11 contention: alternating clear/contended periods
  (two-state Markov), with full aggregate rate when clear and a small
  share when contended, yielding the bursty on/off delivery pattern
  characteristic of busy APs.
"""

import random
from typing import List

from repro.core.errors import ConfigurationError
from repro.net.trace import BYTES_PER_OPPORTUNITY, DeliveryTrace

__all__ = ["synth_lte_trace", "synth_wifi_trace", "with_outage"]


def _opportunities_from_rates(
    per_ms_rates: List[float], rng: random.Random
) -> List[int]:
    """Turn a per-millisecond expected-opportunity series into timestamps.

    Uses an accumulator (error diffusion) plus Bernoulli jitter so the
    long-run rate is exact while individual milliseconds vary.
    """
    opportunities: List[int] = []
    credit = 0.0
    for ms, rate in enumerate(per_ms_rates, start=1):
        credit += rate
        whole = int(credit)
        credit -= whole
        # Probabilistically round the fractional remainder.
        if credit > 0 and rng.random() < credit:
            whole += 1
            credit -= 1.0
        opportunities.extend([ms] * whole)
    return opportunities


def _mbps_to_opps_per_ms(mbps: float) -> float:
    return mbps * 1e6 / 8.0 / 1000.0 / BYTES_PER_OPPORTUNITY


def synth_lte_trace(
    rng: random.Random,
    mean_mbps: float,
    duration_ms: int = 4000,
    volatility: float = 0.15,
) -> DeliveryTrace:
    """Synthesize an LTE-like delivery trace.

    The instantaneous rate follows a mean-reverting log random walk
    around ``mean_mbps``, updated every 50 ms (a typical fading /
    scheduler-share timescale).
    """
    if mean_mbps <= 0:
        raise ConfigurationError(f"mean_mbps must be positive: {mean_mbps}")
    step_ms = 50
    rates: List[float] = []
    level = 1.0
    for _ in range(0, duration_ms, step_ms):
        level += volatility * rng.gauss(0.0, 1.0) - 0.3 * (level - 1.0)
        level = min(max(level, 0.15), 3.0)
        rates.extend([_mbps_to_opps_per_ms(mean_mbps * level)] * step_ms)
    rates = rates[:duration_ms]
    opportunities = _opportunities_from_rates(rates, rng)
    if not opportunities or opportunities[-1] != duration_ms:
        # Anchor the period so the Mahimahi file format (which infers
        # the period from the last line) round-trips exactly.
        opportunities.append(duration_ms)
    return DeliveryTrace(opportunities, period_ms=duration_ms)


def synth_wifi_trace(
    rng: random.Random,
    mean_mbps: float,
    duration_ms: int = 4000,
    contention: float = 0.3,
) -> DeliveryTrace:
    """Synthesize a WiFi-like delivery trace.

    ``contention`` is the long-run fraction of time the channel is
    busy with other stations; during contended periods this station
    gets 15 % of the clear-channel rate.  The clear-channel rate is
    chosen so the long-run mean equals ``mean_mbps``.
    """
    if mean_mbps <= 0:
        raise ConfigurationError(f"mean_mbps must be positive: {mean_mbps}")
    if not 0.0 <= contention < 1.0:
        raise ConfigurationError(f"contention out of range: {contention}")
    contended_share = 0.15
    clear_rate = mean_mbps / ((1 - contention) + contention * contended_share)
    # Mean sojourn times: ~100 ms clear bursts, scaled to hit the duty cycle.
    mean_clear_ms = 100.0
    mean_busy_ms = (
        mean_clear_ms * contention / max(1 - contention, 1e-6)
        if contention > 0
        else 0.0
    )
    rates: List[float] = []
    busy = False
    remaining = 0
    while len(rates) < duration_ms:
        if remaining <= 0:
            busy = not busy if rates else (rng.random() < contention)
            mean_sojourn = mean_busy_ms if busy else mean_clear_ms
            if mean_sojourn <= 0:
                busy = False
                mean_sojourn = mean_clear_ms
            remaining = max(1, int(rng.expovariate(1.0 / mean_sojourn)))
        rate = clear_rate * (contended_share if busy else 1.0)
        rates.append(_mbps_to_opps_per_ms(rate))
        remaining -= 1
    opportunities = _opportunities_from_rates(rates[:duration_ms], rng)
    if not opportunities or opportunities[-1] != duration_ms:
        opportunities.append(duration_ms)
    return DeliveryTrace(opportunities, period_ms=duration_ms)


def with_outage(
    trace: DeliveryTrace, start_ms: int, duration_ms: int
) -> DeliveryTrace:
    """A copy of ``trace`` with a silent gap — a mid-trace radio outage.

    Every delivery opportunity in ``[start_ms, start_ms + duration_ms)``
    is removed while the period is preserved, so the trace loops with
    the outage recurring once per period.  This bakes the failure into
    the *link description* (useful for exporting Mahimahi traces that
    real ``mm-link`` shells replay); for one-shot, per-run scheduled
    failures use :mod:`repro.faults` instead.
    """
    if start_ms < 0:
        raise ConfigurationError(f"outage start must be >= 0: {start_ms}")
    if duration_ms <= 0:
        raise ConfigurationError(
            f"outage duration must be positive: {duration_ms}"
        )
    end_ms = start_ms + duration_ms
    if end_ms >= trace.period_ms:
        raise ConfigurationError(
            f"outage [{start_ms}, {end_ms}) ms must end inside the "
            f"{trace.period_ms} ms trace period"
        )
    kept = [ms for ms in trace.offsets_ms if not (start_ms <= ms < end_ms)]
    if not kept:
        raise ConfigurationError(
            "outage would remove every delivery opportunity"
        )
    return DeliveryTrace(kept, period_ms=trace.period_ms)
